package membership

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/core/fd"
	"canely/internal/sim"
	"canely/internal/trace"
)

// Config parameterizes the site membership protocol (Figure 9).
type Config struct {
	// Tm is the membership cycle period.
	Tm time.Duration
	// TjoinWait is the maximum join wait delay armed when a node requests
	// integration; it must be much longer than Tm (footnote 9). If it
	// expires with no full member active, the joiners bootstrap a view
	// among themselves.
	TjoinWait time.Duration
	// RHA configures the reception history agreement micro-protocol.
	RHA RHAConfig
	// RHAEveryCycle disables the bandwidth-saving skip of Figure 9 line
	// s22: the RHA micro-protocol then runs every membership cycle even
	// with no pending join/leave requests. This exists purely for the
	// ablation benchmarks that quantify the skip's saving.
	RHAEveryCycle bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tm <= 0 {
		return fmt.Errorf("membership: cycle period Tm must be positive, got %v", c.Tm)
	}
	if c.TjoinWait <= c.Tm {
		return fmt.Errorf("membership: join wait %v must exceed the cycle period %v", c.TjoinWait, c.Tm)
	}
	if c.RHA.Trha >= c.Tm {
		return fmt.Errorf("membership: RHA termination %v must be shorter than the cycle period %v", c.RHA.Trha, c.Tm)
	}
	return c.RHA.Validate()
}

// Change is a membership change notification (msh-can.nty): the set of
// active sites and the set of failed nodes being reported.
type Change struct {
	Active can.NodeSet
	Failed can.NodeSet
	// Left reports the local node's own successful withdrawal: the final
	// notification a leaving node receives.
	Left bool
}

// Protocol is the site membership protocol entity at one node. It
// consistently maintains Rf, the site membership view, across node crash
// failures (folded in from the companion failure detection service) and
// node join/leave events (agreed through the RHA micro-protocol).
type Protocol struct {
	cfg   Config
	sched *sim.Scheduler
	layer *canlayer.Layer
	det   *fd.Detector
	rha   *RHA
	tr    *trace.Trace
	local can.NodeID

	tid *sim.Timer

	// Protocol data sets (Figure 9 line i01).
	rf     can.NodeSet // site membership view
	rj     can.NodeSet // nodes in a joining process
	rjPrev can.NodeSet // joiners carried from the previous cycle (footnote 10)
	rl     can.NodeSet // nodes requesting withdrawal
	fset   can.NodeSet // crash failures detected this cycle

	onChange []func(Change)

	// Cycles counts membership cycle completions (diagnostics).
	Cycles int
	left   bool

	// sawActivity records evidence of active full members observed while
	// the local node is not integrated (RHA executions, life-signs,
	// application traffic). It gates the cold-start bootstrap: a joining
	// node whose join wait elapsed retries the join when full members are
	// demonstrably active, instead of bootstrapping a spurious singleton
	// view. The paper's pseudocode (line s18) assumes the timer can only
	// expire at a non-integrated node when "no full-member is active";
	// this flag is what makes that assumption checkable.
	sawActivity bool
}

// New wires the membership protocol to the layer, the failure detection
// service and a fresh RHA instance sharing its node sets.
func New(sched *sim.Scheduler, layer *canlayer.Layer, det *fd.Detector, cfg Config, tr *trace.Trace) (*Protocol, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Protocol{
		cfg:   cfg,
		sched: sched,
		layer: layer,
		det:   det,
		tr:    tr,
		local: layer.NodeID(),
	}
	var err error
	p.rha, err = newRHA(sched, layer, p, cfg.RHA, tr)
	if err != nil {
		return nil, err
	}
	p.tid = sim.NewTimer(sched, p.onTimer)
	layer.HandleRTRInd(p.onRTRInd)
	layer.HandleDataNty(p.onDataNty)
	det.Notify(p.onFDNty)
	p.rha.NotifyInit(p.onRHAInit)
	p.rha.NotifyEnd(p.onRHAEnd)
	return p, nil
}

// rhaEnv: the shared sets of Figure 7 line i04.
func (p *Protocol) fullMembers() can.NodeSet { return p.rf }
func (p *Protocol) joining() can.NodeSet     { return p.rj }
func (p *Protocol) leaving() can.NodeSet     { return p.rl }

var _ rhaEnv = (*Protocol)(nil)

// RHA exposes the companion micro-protocol (diagnostics and tests).
func (p *Protocol) RHA() *RHA { return p.rha }

// View returns Rf, the current site membership view.
func (p *Protocol) View() can.NodeSet { return p.rf }

// Member reports whether the local node is currently a full member.
func (p *Protocol) Member() bool { return p.rf.Contains(p.local) }

// OnChange registers an msh-can.nty consumer.
func (p *Protocol) OnChange(fn func(Change)) { p.onChange = append(p.onChange, fn) }

// Bootstrap installs a pre-agreed initial view, starts the membership cycle
// and begins failure-detection surveillance of every member. The paper
// describes steady-state operation; bootstrapping with a static initial
// configuration is the standard way such systems come up (the alternative —
// concurrent joins onto an empty bus — also works, via Join).
func (p *Protocol) Bootstrap(view can.NodeSet) {
	if !view.Contains(p.local) {
		panic(fmt.Sprintf("membership: bootstrap view %v omits local node %v", view, p.local))
	}
	p.rf = view
	p.tid.Start(p.cfg.Tm)
	for _, s := range view.IDs() {
		p.det.Start(s)
	}
}

// Join requests integration of the local node into the set of active sites
// (msh-can.req(JOIN), lines s00–s03).
func (p *Protocol) Join() {
	if p.rf.Contains(p.local) {
		return
	}
	p.left = false
	p.sawActivity = false
	p.tid.Start(p.cfg.TjoinWait)
	_ = p.layer.RTRReq(can.JoinSign(p.local))
	p.tr.Emit(trace.KindJoinRequest, int(p.local), "join requested")
}

// Leave requests withdrawal of the local node from the site membership
// view (msh-can.req(LEAVE), lines s07–s09).
func (p *Protocol) Leave() {
	if !p.rf.Contains(p.local) {
		return
	}
	_ = p.layer.RTRReq(can.LeaveSign(p.local))
	p.tr.Emit(trace.KindLeaveRequest, int(p.local), "leave requested")
}

// onRTRInd collects join/leave requests (lines s04–s06, s10–s12). Local
// and remote requests are handled identically: both arrive through the
// bus, own transmissions included.
func (p *Protocol) onRTRInd(mid can.MID) {
	switch mid.Type {
	case can.TypeJoin:
		p.rj = p.rj.Add(can.NodeID(mid.Param))
	case can.TypeLeave:
		p.rl = p.rl.Add(can.NodeID(mid.Param))
	case can.TypeELS:
		// A life-sign proves a full member is active.
		if !p.rf.Contains(p.local) && can.NodeID(mid.Param) != p.local {
			p.sawActivity = true
		}
	}
}

// onDataNty observes application traffic from other nodes as evidence of
// active members while the local node is not yet integrated.
func (p *Protocol) onDataNty(mid can.MID) {
	if mid.Type == can.TypeData && !p.rf.Contains(p.local) && mid.Src != p.local {
		p.sawActivity = true
	}
}

// onFDNty folds a consistently-signalled node crash into the protocol
// (lines s13–s16): the failure is accumulated for the cycle's view update
// and a membership change is notified immediately.
func (p *Protocol) onFDNty(r can.NodeID) {
	p.fset = p.fset.Add(r)
	p.changeNty(p.rf.Diff(p.fset), can.MakeSet(r))
}

// onRHAInit resynchronizes the membership cycle when an execution of the
// RHA micro-protocol starts (line s17, first disjunct).
func (p *Protocol) onRHAInit() {
	if !p.rf.Contains(p.local) {
		p.sawActivity = true
	}
	p.cycle(false)
}

// onTimer handles expiry of the membership cycle timer — or, at a node
// still joining, of the join wait timer (line s17, second disjunct).
func (p *Protocol) onTimer() { p.cycle(true) }

// cycle implements lines s17–s27.
func (p *Protocol) cycle(timerExpired bool) {
	if p.left {
		return
	}
	if timerExpired && !p.rf.Contains(p.local) {
		if p.sawActivity {
			// Full members are demonstrably active but our join did not
			// integrate (e.g. the JOIN frame was inconsistently omitted at
			// some members, or we were expelled after an inconsistent
			// failure): retry the join rather than bootstrapping a
			// spurious parallel view.
			p.sawActivity = false
			p.tid.Start(p.cfg.TjoinWait)
			_ = p.layer.RTRReq(can.JoinSign(p.local))
			p.tr.Emit(trace.KindJoinRequest, int(p.local), "join retried")
			return
		}
		// The join wait elapsed with no full member active: the joiners
		// bootstrap the view among themselves (lines s18–s20).
		p.rf = p.rj
	}
	p.tid.Start(p.cfg.Tm)
	p.Cycles++
	if !p.rj.Empty() || !p.rl.Empty() || p.cfg.RHAEveryCycle {
		p.rha.Request()
	} else {
		p.viewProc(p.rf)
	}
}

// onRHAEnd applies the agreed reception history vector (lines s28–s34).
func (p *Protocol) onRHAEnd(rhv can.NodeSet) {
	wasMember := p.rf.Contains(p.local)
	p.viewProc(rhv)
	joinersIn := !p.rj.Intersect(p.rf).Empty()
	leaversOut := !p.rl.Diff(p.rf).Empty()
	if joinersIn || leaversOut {
		p.changeNty(p.rf, can.EmptySet)
	}
	p.dataProc(wasMember)
}

// viewProc implements msh-view-proc (lines a00–a02): the new view is the
// agreed set minus the failures detected during the cycle.
func (p *Protocol) viewProc(rw can.NodeSet) {
	old := p.rf
	p.rf = rw.Diff(p.fset)
	p.fset = can.EmptySet
	if p.rf != old {
		p.tr.Emit(trace.KindViewChange, int(p.local), "view %v -> %v", old, p.rf)
	}
}

// dataProc implements msh-data-proc (lines a03–a09): start failure
// detection for integrated joiners, expire stale join requests after two
// cycles (footnote 10), stop surveillance of withdrawn nodes.
func (p *Protocol) dataProc(wasMember bool) {
	justJoined := p.rj.Intersect(p.rf)
	if !wasMember && p.rf.Contains(p.local) {
		// The local node just became a member: begin surveillance of the
		// entire view (the paper omits this detail; existing members
		// already monitor each other, the newcomer must catch up).
		for _, s := range p.rf.IDs() {
			p.det.Start(s)
		}
	} else {
		for _, s := range justJoined.IDs() {
			p.det.Start(s)
		}
	}
	// A join request that failed to integrate (inconsistent reception of
	// the JOIN frame at some members) is retried for one further cycle and
	// then dropped, so Rj cannot grow without bound.
	p.rj = p.rj.Diff(p.rf).Diff(p.rjPrev)
	p.rjPrev = p.rj
	gone := p.rl.Diff(p.rf)
	for _, s := range gone.IDs() {
		p.det.Stop(s)
	}
	p.rl = p.rl.Intersect(p.rf)
}

// changeNty implements msh-chg-nty (lines a10–a18): full members receive
// the change; a node whose withdrawal completed receives its final
// notification and stops cycling.
func (p *Protocol) changeNty(rw, fw can.NodeSet) {
	switch {
	case p.rf.Contains(p.local):
		p.emit(Change{Active: rw, Failed: fw})
	case p.rl.Contains(p.local):
		p.tid.Stop()
		p.left = true
		// The node is out: stop signalling activity (the local ELS
		// generator) and deliver the final notification.
		p.det.Stop(p.local)
		p.emit(Change{Active: p.rf, Failed: can.MakeSet(p.local), Left: true})
	}
}

func (p *Protocol) emit(c Change) {
	for _, fn := range p.onChange {
		fn(c)
	}
}
