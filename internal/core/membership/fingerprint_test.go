package membership_test

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/fptest"
	"canely/internal/sim"
)

func at(ms int) sim.Time { return sim.Time(time.Duration(ms) * time.Millisecond) }

func cfg() membership.Config {
	return membership.Config{
		Tm:        50 * time.Millisecond,
		TjoinWait: 120 * time.Millisecond,
		RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
	}
}

// TestProtocolFingerprint drives the site membership core through the join
// and crash machinery: every transition of the Figure 9 data sets perturbs
// the hash, re-delivered signs do not.
func TestProtocolFingerprint(t *testing.T) {
	fresh := func() fptest.Core {
		p, err := membership.New(0, cfg())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	fptest.Check(t, fresh, []fptest.Step{
		{Name: "bootstrap", Ev: proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 1), At: at(0)}, Mutates: true},
		{Name: "join sign", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.JoinSign(2), At: at(1)}, Mutates: true},
		{Name: "duplicate join sign", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.JoinSign(2), At: at(2)}},
		{Name: "membership cycle", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle, At: at(50)}, Mutates: true},
		{Name: "agreement integrates joiner", Ev: proto.Event{Kind: proto.EvRHAEnd, View: can.MakeSet(0, 1, 2), At: at(55)}, Mutates: true},
		{Name: "failure notification", Ev: proto.Event{Kind: proto.EvFDNty, Node: 1, At: at(80)}, Mutates: true},
		{Name: "next cycle folds the failure", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle, At: at(100)}, Mutates: true},
	})
}

// TestProtocolClone checks the membership protocol's Clone contract over
// the join and crash machinery.
func TestProtocolClone(t *testing.T) {
	fresh := func() fptest.Core {
		p, err := membership.New(0, cfg())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	fptest.CheckClone(t, fresh,
		func(c fptest.Core) fptest.Core { return c.(*membership.Protocol).Clone() },
		[]fptest.Step{
			{Name: "bootstrap", Ev: proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 1), At: at(0)}, Mutates: true},
			{Name: "join sign", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.JoinSign(2), At: at(1)}, Mutates: true},
			{Name: "membership cycle", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle, At: at(50)}, Mutates: true},
			{Name: "agreement integrates joiner", Ev: proto.Event{Kind: proto.EvRHAEnd, View: can.MakeSet(0, 1, 2), At: at(55)}, Mutates: true},
			{Name: "failure notification", Ev: proto.Event{Kind: proto.EvFDNty, Node: 1, At: at(80)}, Mutates: true},
			{Name: "next cycle folds the failure", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle, At: at(100)}, Mutates: true},
		})
}

// TestRHAFingerprint drives the reception history agreement core (with a
// live membership protocol as its shared-sets environment) through an
// execution: proposal, duplicate counting, intersection shrink, expiry.
func TestRHAFingerprint(t *testing.T) {
	fresh := func() fptest.Core {
		p, err := membership.New(0, cfg())
		if err != nil {
			t.Fatal(err)
		}
		p.Step(proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 1), At: at(0)})
		r, err := membership.NewRHA(0, cfg().RHA, p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	rhv := func(s can.NodeSet, src can.NodeID) proto.Event {
		return proto.Event{Kind: proto.EvDataInd, MID: can.RHASign(s.Count(), src), At: at(1)}.WithPayload(s.Bytes())
	}
	fptest.Check(t, fresh, []fptest.Step{
		{Name: "request starts execution", Ev: proto.Event{Kind: proto.EvRHARequest, At: at(0)}, Mutates: true},
		{Name: "first matching vector", Ev: rhv(can.MakeSet(0, 1), 1), Mutates: true},
		{Name: "second matching vector", Ev: rhv(can.MakeSet(0, 1), 1), Mutates: true},
		{Name: "smaller vector shrinks proposal", Ev: rhv(can.MakeSet(0), 1), Mutates: true},
		{Name: "non-RHA data ignored", Ev: proto.Event{Kind: proto.EvDataInd, MID: can.DataSign(0, 1, 0), At: at(2)}.WithPayload([]byte{1})},
		{Name: "termination alarm", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerRHATerm, At: at(5)}, Mutates: true},
	})
}

// TestRHAClone checks the RHA's Clone contract. The shared-sets environment
// is identity, not state: the harness hands each clone the same membership
// protocol its original reads (RHA steps never mutate the environment), so
// original and clone evolve independently over identical set views.
func TestRHAClone(t *testing.T) {
	var env *membership.Protocol
	fresh := func() fptest.Core {
		p, err := membership.New(0, cfg())
		if err != nil {
			t.Fatal(err)
		}
		p.Step(proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 1), At: at(0)})
		env = p
		r, err := membership.NewRHA(0, cfg().RHA, p)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	rhv := func(s can.NodeSet, src can.NodeID) proto.Event {
		return proto.Event{Kind: proto.EvDataInd, MID: can.RHASign(s.Count(), src), At: at(1)}.WithPayload(s.Bytes())
	}
	fptest.CheckClone(t, fresh,
		func(c fptest.Core) fptest.Core { return c.(*membership.RHA).Clone(env) },
		[]fptest.Step{
			{Name: "request starts execution", Ev: proto.Event{Kind: proto.EvRHARequest, At: at(0)}, Mutates: true},
			{Name: "first matching vector", Ev: rhv(can.MakeSet(0, 1), 1), Mutates: true},
			{Name: "second matching vector", Ev: rhv(can.MakeSet(0, 1), 1), Mutates: true},
			{Name: "smaller vector shrinks proposal", Ev: rhv(can.MakeSet(0), 1), Mutates: true},
			{Name: "termination alarm", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerRHATerm, At: at(5)}, Mutates: true},
		})
}
