// Package membership implements the site membership half of the CANELy
// protocol suite: the Reception History Agreement (RHA) micro-protocol of
// Figure 7 and the site membership protocol of Figure 9.
//
// Both entities are sans-I/O state machines: they consume proto.Events and
// emit proto.Commands, and hold no scheduler, layer or trace handles. The
// runtime binding (internal/stack) executes the commands; the composite
// core (internal/core) routes the inter-core kinds (CmdRHARequest,
// CmdRHAInit, CmdRHAEnd, CmdFDStart, CmdFDStop, CmdFDNty).
package membership

import (
	"fmt"
	"hash/maphash"
	"maps"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
)

// RHAConfig parameterizes the reception history agreement.
type RHAConfig struct {
	// Trha is the protocol's maximum termination time: the local alarm
	// started when an execution begins. It must cover the bounded number
	// of convergence rounds [16].
	Trha time.Duration
	// J is the inconsistent omission degree bound (LCAN4): once more than
	// J copies of the current RHV value were observed, a pending local
	// retransmission request is aborted — even J inconsistent omissions
	// cannot have hidden the value from any correct node.
	J int
}

// Validate checks the configuration.
func (c RHAConfig) Validate() error {
	if c.Trha <= 0 {
		return fmt.Errorf("membership: RHA termination time must be positive, got %v", c.Trha)
	}
	if c.J < 0 {
		return fmt.Errorf("membership: inconsistent omission degree must be non-negative, got %d", c.J)
	}
	return nil
}

// SharedSets is what RHA shares with the site membership protocol
// (Figure 7, line i04: the full-member, joining and leaving node sets).
// The RHA core reads them live — the sets evolve between executions and a
// snapshot would go stale.
type SharedSets interface {
	FullMembers() can.NodeSet // Rf
	Joining() can.NodeSet     // Rj
	Leaving() can.NodeSet     // Rl
}

// RHA is the reception history agreement protocol core at one node. Each
// member proposes a reception history vector (RHV); executions converge, by
// pairwise intersection of circulating vectors, on a value delivered
// identically at all correct nodes within Trha.
type RHA struct {
	cfg   RHAConfig
	env   SharedSets
	local can.NodeID

	running bool
	rhv     can.NodeSet
	ndup    map[can.NodeSet]int
	pending can.MID
	hasPend bool

	// Executions counts completed protocol runs (diagnostics).
	Executions int
}

// NewRHA creates the protocol core. The env is typically the membership
// Protocol of the same node (which implements SharedSets).
func NewRHA(local can.NodeID, cfg RHAConfig, env SharedSets) (*RHA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !local.Valid() {
		return nil, fmt.Errorf("membership: invalid local node id %d", local)
	}
	return &RHA{cfg: cfg, env: env, local: local, ndup: make(map[can.NodeSet]int)}, nil
}

// Clone returns an independent deep copy of the core bound to env. The
// environment is identity, not state: a cloned node hands the clone of its
// own membership protocol, so the copy keeps reading its sets live without
// aliasing the original's.
func (r *RHA) Clone(env SharedSets) *RHA {
	c := *r
	c.env = env
	c.ndup = maps.Clone(r.ndup)
	return &c
}

// CopyFrom replaces r's state with a deep copy of src's, rebinding the
// shared-set environment and reusing r's duplicate-counter map storage —
// the allocation-free restore path of the exploration engine's snapshot
// pool.
func (r *RHA) CopyFrom(src *RHA, env SharedSets) {
	m := r.ndup
	*r = *src
	r.env = env
	clear(m)
	for k, v := range src.ndup {
		m[k] = v
	}
	r.ndup = m
}

// Running reports whether an execution is in progress.
func (r *RHA) Running() bool { return r.running }

// Fingerprint writes the core's complete mutable state into h. The ndup
// map has no canonical iteration order, so its entries are folded
// order-independently with MixPair/XOR; the pending mid is meaningful only
// while hasPend is set and is skipped otherwise.
func (r *RHA) Fingerprint(h *maphash.Hash) {
	proto.HashU64(h, uint64(r.local))
	proto.HashBool(h, r.running)
	proto.HashU64(h, uint64(r.rhv))
	var acc uint64
	for k, v := range r.ndup {
		if v != 0 {
			acc ^= proto.MixPair(uint64(k), uint64(v))
		}
	}
	proto.HashU64(h, acc)
	proto.HashBool(h, r.hasPend)
	if r.hasPend {
		proto.HashU64(h, uint64(r.pending.Encode()))
	}
	proto.HashU64(h, uint64(r.Executions))
}

// Step consumes one event and returns a fresh command slice (nil when the
// event produced no action). Compatibility wrapper over StepInto.
func (r *RHA) Step(ev proto.Event) []proto.Command {
	var buf proto.CommandBuf
	r.StepInto(ev, &buf)
	return buf.Commands()
}

// StepInto consumes one event, appending the resulting commands to buf.
func (r *RHA) StepInto(ev proto.Event, buf *proto.CommandBuf) {
	switch ev.Kind {
	case proto.EvRHARequest:
		r.request(buf)
	case proto.EvDataInd:
		r.onDataInd(ev.MID, ev.Payload(), buf)
	case proto.EvTimerFired:
		if ev.Timer == proto.TimerRHATerm {
			r.expire(buf)
		}
	}
}

// request starts an execution (rha-can.req, Figure 7 lines s00–s04). Only
// full members may start the protocol in isolation; joining nodes
// participate once they receive an RHV signal. Requests during a running
// execution are absorbed.
func (r *RHA) request(buf *proto.CommandBuf) {
	if !r.env.FullMembers().Contains(r.local) {
		return
	}
	if r.running {
		return
	}
	r.initSend(can.FullSet, buf)
}

// initSend implements rha-init-send (lines a00–a09): establish the initial
// vector, arm the termination alarm, broadcast and notify INIT upward.
func (r *RHA) initSend(rw can.NodeSet, buf *proto.CommandBuf) {
	r.running = true
	buf.Put(proto.SetTimer(proto.TimerRHATerm, r.cfg.Trha))
	if r.env.FullMembers().Contains(r.local) {
		// Full-member initial vector: ((Rf ∪ Rj) − Rl) ∩ Rw.
		r.rhv = r.env.FullMembers().Union(r.env.Joining()).Diff(r.env.Leaving()).Intersect(rw)
	} else {
		// Nodes in a joining process have no valid view; they adopt the
		// received vector (line a05).
		r.rhv = rw
	}
	buf.Put(proto.TraceRHAStart(r.rhv))
	buf.Put(r.sendRHV())
	buf.Put(proto.RHAInit())
}

// sendRHV broadcasts the current vector under mid {RHA, #RHV, local}.
func (r *RHA) sendRHV() proto.Command {
	mid := can.RHASign(r.rhv.Count(), r.local)
	r.pending = mid
	r.hasPend = true
	return proto.SendData(mid, r.rhv.Bytes())
}

// onDataInd handles RHV signal arrivals (lines r00–r13), own transmissions
// included (they bump the duplicate counter like any other copy).
func (r *RHA) onDataInd(mid can.MID, data []byte, buf *proto.CommandBuf) {
	if mid.Type != can.TypeRHA {
		return
	}
	remote, err := can.SetFromBytes(data)
	if err != nil {
		// A malformed RHV would be a protocol bug, not a simulated fault:
		// corrupted frames never reach delivery (MCAN2).
		panic(fmt.Sprintf("membership: malformed RHV payload: %v", err))
	}
	r.ndup[remote]++
	switch {
	case !r.running:
		r.initSend(remote, buf)
	case r.rhv.Intersect(remote) != r.rhv:
		// The received vector excludes nodes we still carry: abort our
		// outstanding proposal, adopt the intersection, rebroadcast
		// (lines r04–r07).
		if r.hasPend {
			buf.Put(proto.Abort(r.pending))
		}
		r.rhv = r.rhv.Intersect(remote)
		buf.Put(r.sendRHV())
	case r.rhv == remote && r.ndup[remote] > r.cfg.J:
		// More than J copies of our exact value are circulating: even J
		// inconsistent omissions cannot have hidden it from any correct
		// node, so our own (re)transmission is redundant (line r08).
		if r.hasPend {
			r.hasPend = false
			buf.Put(proto.Abort(r.pending))
		}
	}
}

// expire ends the execution (lines r14–r18): deliver END with the agreed
// vector and reset protocol state.
func (r *RHA) expire(buf *proto.CommandBuf) {
	rhv := r.rhv
	buf.Put(proto.TraceRHAEnd(rhv))
	// Quench any leftover transmit request: with an adequate Trha it has
	// long been transmitted and this is a no-op; under pathological
	// overload it prevents a stale vector from triggering a spurious
	// post-termination execution at every node.
	if r.hasPend {
		buf.Put(proto.Abort(r.pending))
		r.hasPend = false
	}
	r.running = false
	r.rhv = can.EmptySet
	clear(r.ndup)
	r.Executions++
	buf.Put(proto.RHAEnd(rhv))
}
