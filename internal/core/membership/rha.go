// Package membership implements the site membership half of the CANELy
// protocol suite: the Reception History Agreement (RHA) micro-protocol of
// Figure 7 and the site membership protocol of Figure 9.
package membership

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
	"canely/internal/trace"
)

// RHAConfig parameterizes the reception history agreement.
type RHAConfig struct {
	// Trha is the protocol's maximum termination time: the local alarm
	// started when an execution begins. It must cover the bounded number
	// of convergence rounds [16].
	Trha time.Duration
	// J is the inconsistent omission degree bound (LCAN4): once more than
	// J copies of the current RHV value were observed, a pending local
	// retransmission request is aborted — even J inconsistent omissions
	// cannot have hidden the value from any correct node.
	J int
}

// Validate checks the configuration.
func (c RHAConfig) Validate() error {
	if c.Trha <= 0 {
		return fmt.Errorf("membership: RHA termination time must be positive, got %v", c.Trha)
	}
	if c.J < 0 {
		return fmt.Errorf("membership: inconsistent omission degree must be non-negative, got %d", c.J)
	}
	return nil
}

// rhaEnv is what RHA shares with the site membership protocol (Figure 7,
// line i04: the full-member, joining and leaving node sets).
type rhaEnv interface {
	fullMembers() can.NodeSet // Rf
	joining() can.NodeSet     // Rj
	leaving() can.NodeSet     // Rl
}

// RHA is the reception history agreement protocol entity at one node. Each
// member proposes a reception history vector (RHV); executions converge, by
// pairwise intersection of circulating vectors, on a value delivered
// identically at all correct nodes within Trha.
type RHA struct {
	cfg   RHAConfig
	sched *sim.Scheduler
	layer *canlayer.Layer
	env   rhaEnv
	tr    *trace.Trace
	local can.NodeID

	tid     *sim.Timer
	running bool
	rhv     can.NodeSet
	ndup    map[can.NodeSet]int
	pending can.MID
	hasPend bool

	onInit []func()
	onEnd  []func(rhv can.NodeSet)

	// Executions counts completed protocol runs (diagnostics).
	Executions int
}

// newRHA wires the protocol entity; package-internal because RHA shares
// state with the membership protocol that creates it.
func newRHA(sched *sim.Scheduler, layer *canlayer.Layer, env rhaEnv, cfg RHAConfig, tr *trace.Trace) (*RHA, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := &RHA{
		cfg:   cfg,
		sched: sched,
		layer: layer,
		env:   env,
		tr:    tr,
		local: layer.NodeID(),
		ndup:  make(map[can.NodeSet]int),
	}
	r.tid = sim.NewTimer(sched, r.expire)
	layer.HandleDataInd(r.onDataInd)
	return r, nil
}

// NotifyInit registers an rha-can.nty(INIT) consumer: protocol execution
// has started (the membership protocol resynchronizes its cycle timer).
func (r *RHA) NotifyInit(fn func()) { r.onInit = append(r.onInit, fn) }

// NotifyEnd registers an rha-can.nty(END, RHV) consumer: protocol execution
// finished with the agreed vector.
func (r *RHA) NotifyEnd(fn func(rhv can.NodeSet)) { r.onEnd = append(r.onEnd, fn) }

// Running reports whether an execution is in progress.
func (r *RHA) Running() bool { return r.running }

// Request starts an execution (rha-can.req, Figure 7 lines s00–s04). Only
// full members may start the protocol in isolation; joining nodes
// participate once they receive an RHV signal. Requests during a running
// execution are absorbed.
func (r *RHA) Request() {
	if !r.env.fullMembers().Contains(r.local) {
		return
	}
	if r.running {
		return
	}
	r.initSend(can.FullSet)
}

// initSend implements rha-init-send (lines a00–a09): establish the initial
// vector, broadcast it, arm the termination alarm and notify INIT upward.
func (r *RHA) initSend(rw can.NodeSet) {
	r.running = true
	r.tid.Start(r.cfg.Trha)
	if r.env.fullMembers().Contains(r.local) {
		// Full-member initial vector: ((Rf ∪ Rj) − Rl) ∩ Rw.
		r.rhv = r.env.fullMembers().Union(r.env.joining()).Diff(r.env.leaving()).Intersect(rw)
	} else {
		// Nodes in a joining process have no valid view; they adopt the
		// received vector (line a05).
		r.rhv = rw
	}
	r.tr.Emit(trace.KindRHAStart, int(r.local), "rhv=%v", r.rhv)
	r.sendRHV()
	for _, fn := range r.onInit {
		fn()
	}
}

// sendRHV broadcasts the current vector under mid {RHA, #RHV, local}.
func (r *RHA) sendRHV() {
	mid := can.RHASign(r.rhv.Count(), r.local)
	// A request failure means the local controller died; the execution
	// will still terminate locally, and the node is about to be detected.
	_ = r.layer.DataReq(mid, r.rhv.Bytes())
	r.pending = mid
	r.hasPend = true
}

// onDataInd handles RHV signal arrivals (lines r00–r13), own transmissions
// included (they bump the duplicate counter like any other copy).
func (r *RHA) onDataInd(mid can.MID, data []byte) {
	if mid.Type != can.TypeRHA {
		return
	}
	remote, err := can.SetFromBytes(data)
	if err != nil {
		// A malformed RHV would be a protocol bug, not a simulated fault:
		// corrupted frames never reach delivery (MCAN2).
		panic(fmt.Sprintf("membership: malformed RHV payload: %v", err))
	}
	r.ndup[remote]++
	switch {
	case !r.running:
		r.initSend(remote)
	case r.rhv.Intersect(remote) != r.rhv:
		// The received vector excludes nodes we still carry: abort our
		// outstanding proposal, adopt the intersection, rebroadcast
		// (lines r04–r07).
		if r.hasPend {
			r.layer.AbortReq(r.pending)
		}
		r.rhv = r.rhv.Intersect(remote)
		r.sendRHV()
	case r.rhv == remote && r.ndup[remote] > r.cfg.J:
		// More than J copies of our exact value are circulating: even J
		// inconsistent omissions cannot have hidden it from any correct
		// node, so our own (re)transmission is redundant (line r08).
		if r.hasPend {
			r.layer.AbortReq(r.pending)
			r.hasPend = false
		}
	}
}

// expire ends the execution (lines r14–r18): deliver END with the agreed
// vector and reset protocol state.
func (r *RHA) expire() {
	rhv := r.rhv
	r.tr.Emit(trace.KindRHAEnd, int(r.local), "rhv=%v", rhv)
	// Quench any leftover transmit request: with an adequate Trha it has
	// long been transmitted and this is a no-op; under pathological
	// overload it prevents a stale vector from triggering a spurious
	// post-termination execution at every node.
	if r.hasPend {
		r.layer.AbortReq(r.pending)
		r.hasPend = false
	}
	r.running = false
	r.rhv = can.EmptySet
	r.ndup = make(map[can.NodeSet]int)
	r.Executions++
	for _, fn := range r.onEnd {
		fn(rhv)
	}
}
