package groups

import (
	"hash/maphash"
	"testing"

	"canely/internal/can"
	"canely/internal/core/membership"
)

type fpSite struct{ view can.NodeSet }

func (s *fpSite) View() can.NodeSet                { return s.view }
func (s *fpSite) OnChange(func(membership.Change)) {}

// TestServiceFingerprint checks the fingerprint properties on the group
// layer, which is driven by RELCAN deliveries and site view changes rather
// than proto events: every registration change and site-driven pruning
// perturbs the hash, idempotent re-deliveries and foreign payloads do not,
// and an independent replay of the same delivery sequence reproduces every
// fingerprint (the map folding is order-independent).
func TestServiceFingerprint(t *testing.T) {
	seed := maphash.MakeSeed()
	sum := func(s *Service) uint64 {
		var h maphash.Hash
		h.SetSeed(seed)
		s.Fingerprint(&h)
		return h.Sum64()
	}
	fresh := func() (*Service, *fpSite) {
		site := &fpSite{view: can.MakeSet(0, 1, 2)}
		return &Service{local: 0, site: site, registered: map[GroupID]can.NodeSet{}}, site
	}
	type step struct {
		name    string
		apply   func(*Service, *fpSite)
		mutates bool
	}
	script := []step{
		{"join announcement", func(s *Service, _ *fpSite) { s.onAnnouncement(2, 0, []byte{actJoin, 1, 2}) }, true},
		{"duplicate join", func(s *Service, _ *fpSite) { s.onAnnouncement(2, 0, []byte{actJoin, 1, 2}) }, false},
		{"second member", func(s *Service, _ *fpSite) { s.onAnnouncement(0, 0, []byte{actJoin, 1, 0}) }, true},
		{"second group", func(s *Service, _ *fpSite) { s.onAnnouncement(0, 0, []byte{actJoin, 7, 0}) }, true},
		{"foreign payload ignored", func(s *Service, _ *fpSite) { s.onAnnouncement(0, 0, []byte{actJoin, 1}) }, false},
		{"leave announcement", func(s *Service, _ *fpSite) { s.onAnnouncement(0, 0, []byte{actLeave, 1, 0}) }, true},
		{"site change prunes registrations", func(s *Service, site *fpSite) {
			site.view = can.MakeSet(0, 1)
			s.reconcile()
		}, true},
	}

	a, siteA := fresh()
	fps := []uint64{sum(a)}
	for i, st := range script {
		st.apply(a, siteA)
		fp := sum(a)
		prev := fps[len(fps)-1]
		if st.mutates && fp == prev {
			t.Errorf("step %d (%s): state-mutating step left the fingerprint unchanged", i, st.name)
		}
		if !st.mutates && fp != prev {
			t.Errorf("step %d (%s): step marked non-mutating perturbed the fingerprint", i, st.name)
		}
		fps = append(fps, fp)
	}

	b, siteB := fresh()
	if got := sum(b); got != fps[0] {
		t.Errorf("fresh services disagree: %#x vs %#x", got, fps[0])
	}
	for i, st := range script {
		st.apply(b, siteB)
		if got := sum(b); got != fps[i+1] {
			t.Errorf("step %d (%s): replay reached fingerprint %#x, original run had %#x",
				i, st.name, got, fps[i+1])
		}
	}
}

// TestServiceClone checks the group layer's Clone contract: the clone
// hashes identically at the split, and original and clone evolve
// independently afterwards (the registration map must not be aliased).
func TestServiceClone(t *testing.T) {
	seed := maphash.MakeSeed()
	sum := func(s *Service) uint64 {
		var h maphash.Hash
		h.SetSeed(seed)
		s.Fingerprint(&h)
		return h.Sum64()
	}
	site := &fpSite{view: can.MakeSet(0, 1, 2)}
	s := &Service{local: 0, site: site, registered: map[GroupID]can.NodeSet{}}
	s.onAnnouncement(2, 0, []byte{actJoin, 1, 2})
	s.onAnnouncement(0, 0, []byte{actJoin, 7, 0})

	c := s.Clone(nil, site)
	if sum(c) != sum(s) {
		t.Fatalf("clone hashes %#x, original hashes %#x", sum(c), sum(s))
	}

	split := sum(s)
	c.onAnnouncement(0, 0, []byte{actJoin, 1, 0})
	if sum(s) != split {
		t.Fatal("mutating the clone changed the original: aliased registration map")
	}
	if sum(c) == split {
		t.Fatal("clone did not evolve")
	}

	cNow := sum(c)
	s.onAnnouncement(2, 0, []byte{actLeave, 1, 2})
	if sum(c) != cNow {
		t.Fatal("mutating the original changed the clone: aliased registration map")
	}
}
