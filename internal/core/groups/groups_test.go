package groups_test

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/groups"
	"canely/internal/core/membership"
	"canely/internal/fault"
	"canely/internal/sim"
	"canely/internal/stack"
)

type node struct {
	st      *stack.Stack
	changes []groups.Change
}

type rig struct {
	sched *sim.Scheduler
	nodes []*node
}

func newRig(t *testing.T, n int, inj fault.Injector) *rig {
	t.Helper()
	s := sim.NewScheduler()
	medium := stack.NewMedium(s, stack.MediumConfig{Injector: inj})
	r := &rig{sched: s}
	cfg := stack.Config{
		FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
		Membership: membership.Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		},
		J: 2,
	}
	for i := 0; i < n; i++ {
		st, err := stack.New(s, []stack.Medium{medium}, can.NodeID(i), cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.EnableGroups(); err != nil {
			t.Fatal(err)
		}
		nd := &node{st: st}
		st.Groups.OnChange(func(c groups.Change) { nd.changes = append(nd.changes, c) })
		r.nodes = append(r.nodes, nd)
	}
	view := can.RangeSet(0, can.NodeID(n))
	for _, nd := range r.nodes {
		nd.st.Bootstrap(view)
	}
	return r
}

const gCtrl = groups.GroupID(7)

func TestGroupJoinVisibleEverywhere(t *testing.T) {
	r := newRig(t, 4, nil)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[1].st.Groups.Join(gCtrl)
	r.nodes[3].st.Groups.Join(gCtrl)
	r.sched.RunFor(20 * time.Millisecond)
	want := can.MakeSet(1, 3)
	for i, nd := range r.nodes {
		if nd.st.Groups.View(gCtrl) != want {
			t.Fatalf("node %d group view = %v, want %v", i, nd.st.Groups.View(gCtrl), want)
		}
	}
	if len(r.nodes[0].changes) != 2 {
		t.Fatalf("changes = %+v", r.nodes[0].changes)
	}
}

func TestGroupLeave(t *testing.T) {
	r := newRig(t, 3, nil)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[0].st.Groups.Join(gCtrl)
	r.nodes[1].st.Groups.Join(gCtrl)
	r.sched.RunFor(20 * time.Millisecond)
	r.nodes[0].st.Groups.Leave(gCtrl)
	r.sched.RunFor(20 * time.Millisecond)
	for i, nd := range r.nodes {
		if nd.st.Groups.View(gCtrl) != can.MakeSet(1) {
			t.Fatalf("node %d group view = %v", i, nd.st.Groups.View(gCtrl))
		}
	}
}

func TestSiteCrashPrunesGroupViews(t *testing.T) {
	r := newRig(t, 4, nil)
	r.sched.RunFor(10 * time.Millisecond)
	for _, i := range []int{1, 2} {
		r.nodes[i].st.Groups.Join(gCtrl)
	}
	r.sched.RunFor(20 * time.Millisecond)
	r.nodes[2].st.Ports[0].Crash()
	// Tb + Ttd detection + a cycle for the view update.
	r.sched.RunFor(100 * time.Millisecond)
	want := can.MakeSet(1)
	for _, i := range []int{0, 1, 3} {
		if got := r.nodes[i].st.Groups.View(gCtrl); got != want {
			t.Fatalf("node %d group view = %v, want %v (crashed site pruned)", i, got, want)
		}
	}
}

func TestGroupViewsAgreeUnderInconsistentAnnouncement(t *testing.T) {
	// The group-join announcement is inconsistently omitted at node 2;
	// RELCAN's agreement must still converge all group views.
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeRel),
		Decision: fault.Decision{InconsistentVictims: can.MakeSet(2), CrashSenders: true},
	})
	r := newRig(t, 4, script)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[1].st.Groups.Join(gCtrl)
	r.sched.RunFor(200 * time.Millisecond)
	if !script.Exhausted() {
		t.Fatalf("scenario did not fire: %s", script.PendingRules())
	}
	// Node 1 (the announcer) crashed with the scenario; its site is
	// expelled, so the group ends empty — *identically* everywhere.
	for _, i := range []int{0, 2, 3} {
		if got := r.nodes[i].st.Groups.View(gCtrl); !got.Empty() {
			t.Fatalf("node %d group view = %v, want empty (site expelled)", i, got)
		}
	}
}

func TestMultipleGroupsIndependent(t *testing.T) {
	r := newRig(t, 3, nil)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[0].st.Groups.Join(groups.GroupID(1))
	r.nodes[1].st.Groups.Join(groups.GroupID(2))
	r.sched.RunFor(20 * time.Millisecond)
	for i, nd := range r.nodes {
		g1, g2 := nd.st.Groups.View(groups.GroupID(1)), nd.st.Groups.View(groups.GroupID(2))
		if g1 != can.MakeSet(0) || g2 != can.MakeSet(1) {
			t.Fatalf("node %d views: g1=%v g2=%v", i, g1, g2)
		}
	}
	gs := r.nodes[0].st.Groups.Groups()
	if len(gs) != 2 {
		t.Fatalf("groups = %v", gs)
	}
}

func TestRejoinAfterSitePrune(t *testing.T) {
	r := newRig(t, 3, nil)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[1].st.Groups.Join(gCtrl)
	r.sched.RunFor(20 * time.Millisecond)
	r.nodes[1].st.Leave()
	r.sched.RunFor(150 * time.Millisecond)
	for _, i := range []int{0, 2} {
		if !r.nodes[i].st.Groups.View(gCtrl).Empty() {
			t.Fatalf("node %d still sees the withdrawn site in the group", i)
		}
	}
}
