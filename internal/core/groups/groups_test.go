package groups

import (
	"testing"
	"time"

	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/edcan"
	"canely/internal/fault"
	"canely/internal/sim"
)

type node struct {
	port    *bus.Port
	layer   *canlayer.Layer
	msh     *membership.Protocol
	svc     *Service
	changes []Change
}

type rig struct {
	sched *sim.Scheduler
	bus   *bus.Bus
	nodes []*node
}

func newRig(t *testing.T, n int, inj fault.Injector) *rig {
	t.Helper()
	s := sim.NewScheduler()
	b := bus.New(s, bus.Config{Injector: inj})
	r := &rig{sched: s, bus: b}
	mshCfg := membership.Config{
		Tm:        50 * time.Millisecond,
		TjoinWait: 120 * time.Millisecond,
		RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
	}
	fdCfg := fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond}
	for i := 0; i < n; i++ {
		nd := &node{}
		nd.port = b.Attach(can.NodeID(i))
		nd.layer = canlayer.New(nd.port)
		fda := fd.NewFDA(nd.layer)
		det, err := fd.NewDetector(s, nd.layer, fda, fdCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		msh, err := membership.New(s, nd.layer, det, mshCfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		nd.msh = msh
		rel, err := edcan.NewRELCAN(s, nd.layer, edcan.RELCANConfig{Timeout: 2 * time.Millisecond, J: 2})
		if err != nil {
			t.Fatal(err)
		}
		nd.svc = New(rel, msh, can.NodeID(i))
		nd.svc.OnChange(func(c Change) { nd.changes = append(nd.changes, c) })
		r.nodes = append(r.nodes, nd)
	}
	view := can.RangeSet(0, can.NodeID(n))
	for _, nd := range r.nodes {
		nd.msh.Bootstrap(view)
	}
	return r
}

const gCtrl = GroupID(7)

func TestGroupJoinVisibleEverywhere(t *testing.T) {
	r := newRig(t, 4, nil)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[1].svc.Join(gCtrl)
	r.nodes[3].svc.Join(gCtrl)
	r.sched.RunFor(20 * time.Millisecond)
	want := can.MakeSet(1, 3)
	for i, nd := range r.nodes {
		if nd.svc.View(gCtrl) != want {
			t.Fatalf("node %d group view = %v, want %v", i, nd.svc.View(gCtrl), want)
		}
	}
	if len(r.nodes[0].changes) != 2 {
		t.Fatalf("changes = %+v", r.nodes[0].changes)
	}
}

func TestGroupLeave(t *testing.T) {
	r := newRig(t, 3, nil)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[0].svc.Join(gCtrl)
	r.nodes[1].svc.Join(gCtrl)
	r.sched.RunFor(20 * time.Millisecond)
	r.nodes[0].svc.Leave(gCtrl)
	r.sched.RunFor(20 * time.Millisecond)
	for i, nd := range r.nodes {
		if nd.svc.View(gCtrl) != can.MakeSet(1) {
			t.Fatalf("node %d group view = %v", i, nd.svc.View(gCtrl))
		}
	}
}

func TestSiteCrashPrunesGroupViews(t *testing.T) {
	r := newRig(t, 4, nil)
	r.sched.RunFor(10 * time.Millisecond)
	for _, i := range []int{1, 2} {
		r.nodes[i].svc.Join(gCtrl)
	}
	r.sched.RunFor(20 * time.Millisecond)
	r.nodes[2].port.Crash()
	// Tb + Ttd detection + a cycle for the view update.
	r.sched.RunFor(100 * time.Millisecond)
	want := can.MakeSet(1)
	for _, i := range []int{0, 1, 3} {
		if got := r.nodes[i].svc.View(gCtrl); got != want {
			t.Fatalf("node %d group view = %v, want %v (crashed site pruned)", i, got, want)
		}
	}
}

func TestGroupViewsAgreeUnderInconsistentAnnouncement(t *testing.T) {
	// The group-join announcement is inconsistently omitted at node 2;
	// RELCAN's agreement must still converge all group views.
	script := fault.NewScript(fault.Rule{
		Match:    fault.NewMatch(can.TypeRel),
		Decision: fault.Decision{InconsistentVictims: can.MakeSet(2), CrashSenders: true},
	})
	r := newRig(t, 4, script)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[1].svc.Join(gCtrl)
	r.sched.RunFor(200 * time.Millisecond)
	if !script.Exhausted() {
		t.Fatalf("scenario did not fire: %s", script.PendingRules())
	}
	// Node 1 (the announcer) crashed with the scenario; its site is
	// expelled, so the group ends empty — *identically* everywhere.
	for _, i := range []int{0, 2, 3} {
		if got := r.nodes[i].svc.View(gCtrl); !got.Empty() {
			t.Fatalf("node %d group view = %v, want empty (site expelled)", i, got)
		}
	}
}

func TestMultipleGroupsIndependent(t *testing.T) {
	r := newRig(t, 3, nil)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[0].svc.Join(GroupID(1))
	r.nodes[1].svc.Join(GroupID(2))
	r.sched.RunFor(20 * time.Millisecond)
	for i, nd := range r.nodes {
		if nd.svc.View(GroupID(1)) != can.MakeSet(0) || nd.svc.View(GroupID(2)) != can.MakeSet(1) {
			t.Fatalf("node %d views: g1=%v g2=%v", i, nd.svc.View(GroupID(1)), nd.svc.View(GroupID(2)))
		}
	}
	gs := r.nodes[0].svc.Groups()
	if len(gs) != 2 {
		t.Fatalf("groups = %v", gs)
	}
}

func TestRejoinAfterSitePrune(t *testing.T) {
	r := newRig(t, 3, nil)
	r.sched.RunFor(10 * time.Millisecond)
	r.nodes[1].svc.Join(gCtrl)
	r.sched.RunFor(20 * time.Millisecond)
	r.nodes[1].msh.Leave()
	r.sched.RunFor(150 * time.Millisecond)
	for _, i := range []int{0, 2} {
		if !r.nodes[i].svc.View(gCtrl).Empty() {
			t.Fatalf("node %d still sees the withdrawn site in the group", i)
		}
	}
}
