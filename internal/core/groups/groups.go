// Package groups implements process group membership on top of the CANELy
// site membership service — the use the paper names first when motivating
// the service ("it is a crucial assistant for process group membership
// management", §6).
//
// A process group is a named set of application processes spread over the
// sites. The layer maintains, at every site, the group view: the set of
// sites currently hosting a registered member of the group. Two sources
// feed it:
//
//   - registrations: join/leave announcements carried over the RELCAN
//     reliable broadcast, so all correct sites agree on who registered;
//   - the site membership view: when the site membership service expels a
//     site (crash or withdrawal), its registrations vanish from every
//     group atomically with the site view change — no per-group failure
//     detection is needed, which is precisely the paper's point.
package groups

import (
	"fmt"
	"hash/maphash"
	"maps"

	"canely/internal/can"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/edcan"
)

// GroupID names a process group.
type GroupID uint8

// action codes on the wire.
const (
	actJoin  = 1
	actLeave = 2
)

// Change is a group view change notification.
type Change struct {
	Group GroupID
	// Sites is the new group view: sites hosting at least one member.
	Sites can.NodeSet
}

// SiteView is the slice of the site membership service the group layer
// depends on: the current view and change notifications. The stack's
// runtime binding implements it over the membership core.
type SiteView interface {
	View() can.NodeSet
	OnChange(fn func(membership.Change))
}

// Service is the process-group layer at one site.
type Service struct {
	local can.NodeID
	rel   *edcan.RELCAN
	site  SiteView

	// registered[g] is the agreed set of sites registered in group g.
	registered map[GroupID]can.NodeSet
	onChange   []func(Change)
}

// New builds the service on an existing RELCAN broadcaster and site
// membership protocol. The RELCAN instance may be shared with the
// application; group announcements use a reserved payload prefix.
func New(rel *edcan.RELCAN, site SiteView, local can.NodeID) *Service {
	s := &Service{
		local:      local,
		rel:        rel,
		site:       site,
		registered: make(map[GroupID]can.NodeSet),
	}
	rel.Deliver(s.onAnnouncement)
	site.OnChange(func(membership.Change) { s.reconcile() })
	return s
}

// Clone returns a deep copy of the service bound to a fresh environment.
// The RELCAN broadcaster and the site view are identity, not state: the
// clone registers its own delivery and site-change callbacks on the given
// instances, mirroring New; a nil instance yields a detached clone (state
// snapshot only, no live feeds). Change consumers are environment too — the
// clone starts with none.
func (s *Service) Clone(rel *edcan.RELCAN, site SiteView) *Service {
	c := &Service{
		local:      s.local,
		rel:        rel,
		site:       site,
		registered: maps.Clone(s.registered),
	}
	if rel != nil {
		rel.Deliver(c.onAnnouncement)
	}
	if site != nil {
		site.OnChange(func(membership.Change) { c.reconcile() })
	}
	return c
}

// OnChange registers a group view change consumer.
func (s *Service) OnChange(fn func(Change)) { s.onChange = append(s.onChange, fn) }

// Fingerprint writes the layer's complete mutable state into h: the agreed
// registration sets, folded order-independently (the map has no canonical
// iteration order). A group whose registration set became empty is
// indistinguishable from an absent entry everywhere the state is read, so
// empty sets are skipped — logically equal states hash equal.
func (s *Service) Fingerprint(h *maphash.Hash) {
	proto.HashU64(h, uint64(s.local))
	var acc uint64
	for g, reg := range s.registered {
		if reg != can.EmptySet {
			acc ^= proto.MixPair(uint64(g), uint64(reg))
		}
	}
	proto.HashU64(h, acc)
}

// Join announces a local process joining a group.
func (s *Service) Join(g GroupID) error {
	_, err := s.rel.Broadcast([]byte{actJoin, byte(g), byte(s.local)})
	if err != nil {
		return fmt.Errorf("groups: join announcement: %w", err)
	}
	return nil
}

// Leave announces the local process leaving a group.
func (s *Service) Leave(g GroupID) error {
	_, err := s.rel.Broadcast([]byte{actLeave, byte(g), byte(s.local)})
	if err != nil {
		return fmt.Errorf("groups: leave announcement: %w", err)
	}
	return nil
}

// View returns the current group view: registered sites that are also in
// the site membership view.
func (s *Service) View(g GroupID) can.NodeSet {
	return s.registered[g].Intersect(s.site.View())
}

// Groups lists the groups with at least one visible member.
func (s *Service) Groups() []GroupID {
	var out []GroupID
	for g := range s.registered {
		if !s.View(g).Empty() {
			out = append(out, g)
		}
	}
	return out
}

// onAnnouncement applies an agreed registration change.
func (s *Service) onAnnouncement(_ can.NodeID, _ uint8, data []byte) {
	if len(data) != 3 {
		return // not a group announcement (shared RELCAN instance)
	}
	action, g, site := data[0], GroupID(data[1]), can.NodeID(data[2])
	if !site.Valid() {
		return
	}
	before := s.View(g)
	switch action {
	case actJoin:
		s.registered[g] = s.registered[g].Add(site)
	case actLeave:
		s.registered[g] = s.registered[g].Remove(site)
	default:
		return
	}
	if after := s.View(g); after != before {
		s.emit(Change{Group: g, Sites: after})
	}
}

// reconcile re-derives every group view after a site membership change:
// registrations of expelled sites disappear, atomically with the view.
func (s *Service) reconcile() {
	view := s.site.View()
	for g, reg := range s.registered {
		pruned := reg.Intersect(view)
		if pruned != reg {
			s.registered[g] = pruned
			s.emit(Change{Group: g, Sites: s.View(g)})
		}
	}
}

func (s *Service) emit(c Change) {
	for _, fn := range s.onChange {
		fn(c)
	}
}
