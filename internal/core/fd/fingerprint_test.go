package fd_test

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/proto"
	"canely/internal/fptest"
	"canely/internal/sim"
)

func at(ms int) sim.Time { return sim.Time(time.Duration(ms) * time.Millisecond) }

// TestFDAFingerprint checks the fingerprint properties over the FDA's whole
// event surface: requests, duplicate counting, retraction and the
// reintegration reset all perturb the hash; non-FDA traffic and absorbed
// retractions do not.
func TestFDAFingerprint(t *testing.T) {
	fptest.Check(t, func() fptest.Core { return fd.NewFDA() }, []fptest.Step{
		{Name: "first request", Ev: proto.Event{Kind: proto.EvFDARequest, Node: 1}, Mutates: true},
		{Name: "repeat request", Ev: proto.Event{Kind: proto.EvFDARequest, Node: 1}, Mutates: true},
		{Name: "first sign copy", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.FDASign(1)}, Mutates: true},
		{Name: "sign for another node", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.FDASign(2)}, Mutates: true},
		{Name: "non-FDA frame", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.ELSSign(1)}},
		{Name: "cancel after a copy circulated", Ev: proto.Event{Kind: proto.EvFDACancel, Node: 2}},
		{Name: "forget at reintegration", Ev: proto.Event{Kind: proto.EvFDAForget, Node: 1}, Mutates: true},
		{Name: "fresh request", Ev: proto.Event{Kind: proto.EvFDARequest, Node: 3}, Mutates: true},
		{Name: "cancel retracts it", Ev: proto.Event{Kind: proto.EvFDACancel, Node: 3}, Mutates: true},
	})
}

// TestFDAClone checks the FDA's Clone contract at every split point of the
// same script: identical fingerprint at the split, independent evolution
// afterwards.
func TestFDAClone(t *testing.T) {
	fptest.CheckClone(t,
		func() fptest.Core { return fd.NewFDA() },
		func(c fptest.Core) fptest.Core { return c.(*fd.FDA).Clone() },
		[]fptest.Step{
			{Name: "first request", Ev: proto.Event{Kind: proto.EvFDARequest, Node: 1}, Mutates: true},
			{Name: "first sign copy", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.FDASign(1)}, Mutates: true},
			{Name: "sign for another node", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.FDASign(2)}, Mutates: true},
			{Name: "forget at reintegration", Ev: proto.Event{Kind: proto.EvFDAForget, Node: 1}, Mutates: true},
			{Name: "fresh request", Ev: proto.Event{Kind: proto.EvFDARequest, Node: 3}, Mutates: true},
		})
}

// TestDetectorFingerprint walks a detector through surveillance arming,
// activity restarts, scan expiries (local life-sign and remote silence),
// stop-with-agreement-in-flight and the late stale agreement.
func TestDetectorFingerprint(t *testing.T) {
	cfg := fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond}
	fresh := func() fptest.Core {
		d, err := fd.NewDetector(0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	fptest.Check(t, fresh, []fptest.Step{
		{Name: "start local surveillance", Ev: proto.Event{Kind: proto.EvFDStart, Node: 0, At: at(0)}, Mutates: true},
		{Name: "start remote surveillance", Ev: proto.Event{Kind: proto.EvFDStart, Node: 1, At: at(0)}, Mutates: true},
		{Name: "data activity restarts deadline", Ev: proto.Event{Kind: proto.EvDataNty, MID: can.DataSign(0, 1, 0), At: at(5)}, Mutates: true},
		{Name: "equal life-sign is idempotent", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.ELSSign(1), At: at(5)}},
		{Name: "activity of unmonitored node", Ev: proto.Event{Kind: proto.EvDataNty, MID: can.DataSign(0, 2, 0), At: at(6)}},
		{Name: "scan: local expiry broadcasts ELS", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFDScan, At: at(10)}, Mutates: true},
		{Name: "scan: remote silence reported to FDA", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFDScan, At: at(17)}, Mutates: true},
		{Name: "stop with agreement in flight", Ev: proto.Event{Kind: proto.EvFDStop, Node: 1}, Mutates: true},
		{Name: "late agreement suppressed", Ev: proto.Event{Kind: proto.EvFDANty, Node: 1}, Mutates: true},
	})
}

// TestDetectorClone checks the detector's Clone contract over the same
// surveillance machinery the fingerprint test exercises.
func TestDetectorClone(t *testing.T) {
	cfg := fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond}
	fresh := func() fptest.Core {
		d, err := fd.NewDetector(0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	fptest.CheckClone(t, fresh,
		func(c fptest.Core) fptest.Core { return c.(*fd.Detector).Clone() },
		[]fptest.Step{
			{Name: "start local surveillance", Ev: proto.Event{Kind: proto.EvFDStart, Node: 0, At: at(0)}, Mutates: true},
			{Name: "start remote surveillance", Ev: proto.Event{Kind: proto.EvFDStart, Node: 1, At: at(0)}, Mutates: true},
			{Name: "data activity restarts deadline", Ev: proto.Event{Kind: proto.EvDataNty, MID: can.DataSign(0, 1, 0), At: at(5)}, Mutates: true},
			{Name: "scan: local expiry broadcasts ELS", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFDScan, At: at(10)}, Mutates: true},
			{Name: "scan: remote silence reported to FDA", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFDScan, At: at(17)}, Mutates: true},
			{Name: "stop with agreement in flight", Ev: proto.Event{Kind: proto.EvFDStop, Node: 1}, Mutates: true},
		})
}
