package fd_test

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/fault"
	"canely/internal/sim"
	"canely/internal/stack"
)

// The integration rig binds full per-node stacks to one bit-accurate
// medium; failure-detection notices are observed through the boundary
// hooks. Only the fd entities are driven (nothing bootstraps membership).
type node struct {
	st *stack.Stack

	fdaNotices []can.NodeID
	fdNotices  []can.NodeID
	fdTimes    []sim.Time
}

type rig struct {
	sched  *sim.Scheduler
	medium stack.Medium
	nodes  []*node
}

var testCfg = fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond}

func stackCfg() stack.Config {
	return stack.Config{
		FD: testCfg,
		Membership: membership.Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		},
		J: 2,
	}
}

func newRig(t *testing.T, n int, inj fault.Injector) *rig {
	t.Helper()
	s := sim.NewScheduler()
	r := &rig{sched: s, medium: stack.NewMedium(s, stack.MediumConfig{Injector: inj})}
	hooks := &stack.Hooks{
		OnFDANotify: func(id, failed can.NodeID) {
			nd := r.nodes[id]
			nd.fdaNotices = append(nd.fdaNotices, failed)
		},
		OnFDNotify: func(id, failed can.NodeID) {
			nd := r.nodes[id]
			nd.fdNotices = append(nd.fdNotices, failed)
			nd.fdTimes = append(nd.fdTimes, s.Now())
		},
	}
	for i := 0; i < n; i++ {
		st, err := stack.New(s, []stack.Medium{r.medium}, can.NodeID(i), stackCfg(), nil, hooks)
		if err != nil {
			t.Fatal(err)
		}
		r.nodes = append(r.nodes, &node{st: st})
	}
	return r
}

func TestFDASingleRequestDiffusesEverywhere(t *testing.T) {
	r := newRig(t, 4, nil)
	r.nodes[0].st.FDARequest(9)
	r.sched.Run()
	for i, nd := range r.nodes {
		if len(nd.fdaNotices) != 1 || nd.fdaNotices[0] != 9 {
			t.Fatalf("node %d fda notices = %v", i, nd.fdaNotices)
		}
	}
}

func TestFDADeliversExactlyOnceDespiteDuplicates(t *testing.T) {
	r := newRig(t, 4, nil)
	// Several detectors request concurrently (clustered) and recipients
	// re-diffuse: upper layers must still see one notification.
	r.nodes[0].st.FDARequest(9)
	r.nodes[1].st.FDARequest(9)
	r.sched.Run()
	for i, nd := range r.nodes {
		if len(nd.fdaNotices) != 1 {
			t.Fatalf("node %d fda notices = %v", i, nd.fdaNotices)
		}
	}
}

func TestFDAClusteringKeepsFrameCountLow(t *testing.T) {
	r := newRig(t, 8, nil)
	for i := 0; i < 4; i++ {
		r.nodes[i].st.FDARequest(30)
	}
	r.sched.Run()
	// Original (4 clustered) + one clustered re-diffusion wave = 2 frames.
	if got := r.medium.Stats().FramesOK; got != 2 {
		t.Fatalf("physical frames = %d, want 2 (clustering)", got)
	}
}

func TestFDAInconsistentOmissionWithSenderCrash(t *testing.T) {
	// The failure-sign's first transmission reaches only node 2; the
	// transmitter dies. Node 2's re-diffusion must cover everyone:
	// consistency of failure notifications despite the worst-case scenario.
	script := fault.NewScript(fault.Rule{
		Match: fault.NewMatch(can.TypeFDA),
		Decision: fault.Decision{
			InconsistentVictims: can.MakeSet(1, 3),
			CrashSenders:        true,
		},
	})
	r := newRig(t, 4, script)
	r.nodes[0].st.FDARequest(9)
	r.sched.Run()
	if !script.Exhausted() {
		t.Fatalf("scenario did not trigger: %s", script.PendingRules())
	}
	for i := 1; i < 4; i++ {
		if len(r.nodes[i].fdaNotices) != 1 {
			t.Fatalf("node %d fda notices = %v (agreement broken)", i, r.nodes[i].fdaNotices)
		}
	}
}

func TestFDAIndependentInstances(t *testing.T) {
	r := newRig(t, 3, nil)
	r.nodes[0].st.FDARequest(7)
	r.nodes[1].st.FDARequest(8)
	r.sched.Run()
	for i, nd := range r.nodes {
		if len(nd.fdaNotices) != 2 {
			t.Fatalf("node %d notices = %v, want both signs", i, nd.fdaNotices)
		}
	}
}

func TestFDAForgetAllowsReuse(t *testing.T) {
	r := newRig(t, 2, nil)
	r.nodes[0].st.FDARequest(5)
	r.sched.Run()
	for _, nd := range r.nodes {
		nd.st.FDA.Forget(5)
	}
	r.nodes[1].st.FDARequest(5)
	r.sched.Run()
	if len(r.nodes[0].fdaNotices) != 2 {
		t.Fatalf("after Forget, second failure not notified: %v", r.nodes[0].fdaNotices)
	}
}

func TestDetectorLocalTimerEmitsELS(t *testing.T) {
	r := newRig(t, 2, nil)
	r.nodes[0].st.FDStart(0)
	r.sched.RunUntil(sim.Time(35 * time.Millisecond))
	if got := r.nodes[0].st.Det.LifeSigns(); got != 3 {
		t.Fatalf("life-signs = %d, want 3 over 35ms at Tb=10ms", got)
	}
}

func TestDetectorRemoteSilenceTriggersFDA(t *testing.T) {
	r := newRig(t, 3, nil)
	// Nodes 1,2 monitor node 0; node 0 never signs.
	r.nodes[1].st.FDStart(0)
	r.nodes[2].st.FDStart(0)
	r.sched.RunUntil(sim.Time(testCfg.DetectionLatency() + 5*time.Millisecond))
	for i := 1; i <= 2; i++ {
		if len(r.nodes[i].fdNotices) != 1 || r.nodes[i].fdNotices[0] != 0 {
			t.Fatalf("node %d fd notices = %v", i, r.nodes[i].fdNotices)
		}
		if r.nodes[i].st.Det.Monitoring(0) {
			t.Fatalf("node %d still monitoring the failed node", i)
		}
	}
}

func TestDetectorELSKeepsNodeAlive(t *testing.T) {
	r := newRig(t, 3, nil)
	// Full surveillance mesh: everyone monitors everyone incl. self.
	for _, nd := range r.nodes {
		for j := 0; j < 3; j++ {
			nd.st.FDStart(can.NodeID(j))
		}
	}
	r.sched.RunUntil(sim.Time(500 * time.Millisecond))
	for i, nd := range r.nodes {
		if len(nd.fdNotices) != 0 {
			t.Fatalf("node %d false detections: %v", i, nd.fdNotices)
		}
	}
}

func TestDetectorImplicitHeartbeatFromData(t *testing.T) {
	r := newRig(t, 3, nil)
	for _, nd := range r.nodes {
		nd.st.FDStart(0)
	}
	r.nodes[0].st.FDStart(0)
	// Node 0 sends application data every 4 ms: no ELS should ever fire.
	tick := sim.NewTicker(r.sched, func() {
		_ = r.nodes[0].st.Layer.DataReq(can.DataSign(0, 0, 0), []byte{1})
	})
	tick.Start(4 * time.Millisecond)
	r.sched.RunUntil(sim.Time(300 * time.Millisecond))
	if got := r.nodes[0].st.Det.LifeSigns(); got != 0 {
		t.Fatalf("life-signs = %d with fast implicit traffic", got)
	}
	for i := 1; i < 3; i++ {
		if len(r.nodes[i].fdNotices) != 0 {
			t.Fatalf("node %d false detection from implicit heartbeats", i)
		}
	}
}

func TestDetectorStopCancelsSurveillance(t *testing.T) {
	r := newRig(t, 2, nil)
	r.nodes[1].st.FDStart(0)
	r.nodes[1].st.FDStop(0)
	r.sched.RunUntil(sim.Time(100 * time.Millisecond))
	if len(r.nodes[1].fdNotices) != 0 {
		t.Fatal("stopped surveillance still detected a failure")
	}
}

// TestDetectorStopRetractsInFlightFDA stops surveillance in the window
// between the surveillance expiry (failure-sign requested, frame still on
// the wire) and the agreement: the stopping node must not deliver the
// stale notification, while other nodes still monitoring do.
func TestDetectorStopRetractsInFlightFDA(t *testing.T) {
	r := newRig(t, 3, nil)
	// Nodes 1,2 monitor silent node 0; both expire at Tb+Ttd = 12ms.
	r.nodes[1].st.FDStart(0)
	r.nodes[2].st.FDStart(0)
	expiry := sim.Time(testCfg.Tb + testCfg.Ttd)
	// Run just past the expiry: the failure-sign frames are queued (and
	// clustered) but the agreement has not completed yet.
	r.sched.RunUntil(expiry.Add(time.Microsecond))
	if len(r.nodes[1].fdNotices) != 0 {
		t.Fatal("agreement completed before the frame could have transmitted")
	}
	r.nodes[1].st.FDStop(0)
	r.sched.RunUntil(expiry.Add(50 * time.Millisecond))
	if len(r.nodes[1].fdNotices) != 0 {
		t.Fatalf("node 1 delivered a stale failure after Stop: %v", r.nodes[1].fdNotices)
	}
	if len(r.nodes[2].fdNotices) != 1 || r.nodes[2].fdNotices[0] != 0 {
		t.Fatalf("node 2 (still monitoring) notices = %v", r.nodes[2].fdNotices)
	}
}

func TestDetectorCrashDetectionLatencyBound(t *testing.T) {
	r := newRig(t, 3, nil)
	for _, nd := range r.nodes {
		for j := 0; j < 3; j++ {
			nd.st.FDStart(can.NodeID(j))
		}
	}
	r.sched.RunUntil(sim.Time(40 * time.Millisecond))
	crashAt := r.sched.Now()
	r.nodes[0].st.Ports[0].Crash()
	r.sched.RunUntil(crashAt.Add(testCfg.DetectionLatency() + 10*time.Millisecond))
	nd := r.nodes[1]
	var detectedAt sim.Time
	found := false
	for i, f := range nd.fdNotices {
		if f == 0 && nd.fdTimes[i] > crashAt {
			detectedAt = nd.fdTimes[i]
			found = true
			break
		}
	}
	if !found {
		t.Fatal("crash never detected")
	}
	latency := detectedAt.Sub(crashAt)
	if latency > testCfg.DetectionLatency() {
		t.Fatalf("latency %v exceeds bound %v", latency, testCfg.DetectionLatency())
	}
	// "Tens of ms" (Figure 11): with Tb=10ms, Ttd=2ms the latency is well
	// under 20 ms.
	if latency > 20*time.Millisecond {
		t.Fatalf("latency %v out of the paper's envelope", latency)
	}
}

func TestDetectorRestartOnStartWhileRunning(t *testing.T) {
	r := newRig(t, 2, nil)
	r.nodes[1].st.FDStart(0)
	r.sched.RunUntil(sim.Time(8 * time.Millisecond))
	r.nodes[1].st.FDStart(0) // restart pushes the deadline
	r.sched.RunUntil(sim.Time(14 * time.Millisecond))
	if len(r.nodes[1].fdNotices) != 0 {
		t.Fatal("restarted timer fired at the original deadline")
	}
}

func TestConfigValidation(t *testing.T) {
	if (fd.Config{Tb: 0, Ttd: time.Millisecond}).Validate() == nil {
		t.Fatal("zero Tb accepted")
	}
	if (fd.Config{Tb: time.Millisecond, Ttd: 0}).Validate() == nil {
		t.Fatal("zero Ttd accepted")
	}
	c := fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond}
	if c.DetectionLatency() != 14*time.Millisecond {
		t.Fatalf("DetectionLatency = %v", c.DetectionLatency())
	}
}

func TestFDADuplicatesCounter(t *testing.T) {
	r := newRig(t, 3, nil)
	r.nodes[0].st.FDARequest(4)
	r.sched.Run()
	// Original frame + clustered re-diffusion: every node saw 2 copies.
	for i, nd := range r.nodes {
		if got := nd.st.FDA.Duplicates(4); got != 2 {
			t.Fatalf("node %d duplicates = %d, want 2", i, got)
		}
	}
}
