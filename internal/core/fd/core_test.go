package fd

// Pure-core tests: drive the sans-I/O state machines event by event and
// assert on the exact command streams, no bus or scheduler involved.

import (
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

var coreCfg = Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond}

func wantCmds(t *testing.T, got []proto.Command, want ...proto.Command) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("commands = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("command %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestFDACoreRequestAndClusteredDedup(t *testing.T) {
	f := NewFDA()
	wantCmds(t, f.Step(proto.Event{Kind: proto.EvFDARequest, Node: 9}),
		proto.SendRTR(can.FDASign(9)))
	// A second local request while the first is outstanding is absorbed.
	wantCmds(t, f.Step(proto.Event{Kind: proto.EvFDARequest, Node: 9}))
	// First observed copy (own transmission): deliver upward; the local
	// request is already outstanding, so no re-request is emitted.
	wantCmds(t, f.Step(proto.Event{Kind: proto.EvRTRInd, MID: can.FDASign(9)}),
		proto.FDANty(9))
	// Later copies are silent.
	wantCmds(t, f.Step(proto.Event{Kind: proto.EvRTRInd, MID: can.FDASign(9)}))
	if f.Duplicates(9) != 2 {
		t.Fatalf("duplicates = %d, want 2", f.Duplicates(9))
	}
}

func TestFDACoreFirstCopyTriggersEagerRediffusion(t *testing.T) {
	f := NewFDA()
	// A copy arrives with no local request outstanding: notify and
	// re-request (guarded against an equivalent pending frame).
	wantCmds(t, f.Step(proto.Event{Kind: proto.EvRTRInd, MID: can.FDASign(7)}),
		proto.FDANty(7),
		proto.SendRTRUnlessPending(can.FDASign(7)))
}

// TestDetectorCoreStopRetractsInFlightFDA is the pure-core regression for
// the stale-expiry fix: Stop between surveillance expiry and the FDA
// agreement must retract the request and suppress the late notification.
func TestDetectorCoreStopRetractsInFlightFDA(t *testing.T) {
	d, err := NewDetector(1, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	period := coreCfg.Tb + coreCfg.Ttd
	wantCmds(t, d.Step(proto.Event{Kind: proto.EvFDStart, Node: 0}),
		proto.SetTimer(proto.TimerFDScan, period))
	// Silence: the surveillance deadline expires.
	at := sim.Time(0).Add(period)
	wantCmds(t, d.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFDScan, At: at}),
		proto.TraceTimerExpired(0),
		proto.FDARequest(0))
	// Surveillance is disabled while the failure-sign is in flight: the
	// detector must retract its request.
	wantCmds(t, d.Step(proto.Event{Kind: proto.EvFDStop, Node: 0}),
		proto.FDACancel(0))
	// The agreement still completes (another node also reported, or the
	// frame already left the queue): the stale notification is dropped.
	wantCmds(t, d.Step(proto.Event{Kind: proto.EvFDANty, Node: 0}))
	if d.Monitoring(0) {
		t.Fatal("node still monitored after Stop")
	}
	// A fresh Start clears the suppression: the next agreement delivers.
	d.Step(proto.Event{Kind: proto.EvFDStart, Node: 0, At: at})
	got := d.Step(proto.Event{Kind: proto.EvFDANty, Node: 0})
	if len(got) != 2 || got[1] != proto.FDNty(0) {
		t.Fatalf("post-restart agreement = %v, want trace+fd-nty", got)
	}
}

func TestFDACoreCancelOnlyBeforeFirstCopy(t *testing.T) {
	f := NewFDA()
	// Cancel with no outstanding request: no-op.
	wantCmds(t, f.Step(proto.Event{Kind: proto.EvFDACancel, Node: 3}))
	// Request then cancel before any copy circulated: abort the frame.
	f.Step(proto.Event{Kind: proto.EvFDARequest, Node: 3})
	wantCmds(t, f.Step(proto.Event{Kind: proto.EvFDACancel, Node: 3}),
		proto.Abort(can.FDASign(3)))
	// Once a copy has circulated the sign is public knowledge: a later
	// cancel must not retract the diffusion.
	f.Step(proto.Event{Kind: proto.EvFDARequest, Node: 4})
	f.Step(proto.Event{Kind: proto.EvRTRInd, MID: can.FDASign(4)})
	wantCmds(t, f.Step(proto.Event{Kind: proto.EvFDACancel, Node: 4}))
}

func TestDetectorCoreScanChasesEarliestDeadline(t *testing.T) {
	d, err := NewDetector(0, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	// Local surveillance at Tb, remote at Tb+Ttd: the scan timer arms for
	// the earlier (local) deadline and is not moved by the later one.
	wantCmds(t, d.Step(proto.Event{Kind: proto.EvFDStart, Node: 0}),
		proto.SetTimer(proto.TimerFDScan, coreCfg.Tb))
	wantCmds(t, d.Step(proto.Event{Kind: proto.EvFDStart, Node: 1}))
	// The local expiry emits an ELS, re-arms its own backstop (Tb ahead),
	// then re-targets the scan at the surviving remote deadline (Ttd
	// ahead) — the chase emits both timer commands, last one wins.
	at := sim.Time(0).Add(coreCfg.Tb)
	got := d.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFDScan, At: at})
	want := []proto.Command{
		proto.TraceELS(),
		proto.SendRTR(can.ELSSign(0)),
		proto.SetTimer(proto.TimerFDScan, coreCfg.Tb),
		proto.SetTimer(proto.TimerFDScan, coreCfg.Ttd),
	}
	wantCmds(t, got, want...)
	if d.LifeSigns() != 1 {
		t.Fatalf("life-signs = %d", d.LifeSigns())
	}
}

func TestDetectorCoreActivityRestartsSurveillance(t *testing.T) {
	d, err := NewDetector(1, coreCfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Step(proto.Event{Kind: proto.EvFDStart, Node: 0})
	// Traffic from node 0 pushes its deadline; the pending scan stays (it
	// fires early and chases), so no command is emitted.
	act := proto.Event{Kind: proto.EvDataNty, At: sim.Time(5 * time.Millisecond),
		MID: can.DataSign(0, 0, 1)}
	wantCmds(t, d.Step(act))
	// The early scan finds nothing expired and re-arms at the new deadline.
	at := sim.Time(coreCfg.Tb + coreCfg.Ttd)
	wantCmds(t, d.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerFDScan, At: at}),
		proto.SetTimer(proto.TimerFDScan, sim.Time(5*time.Millisecond).Add(coreCfg.Tb+coreCfg.Ttd).Sub(at)))
}
