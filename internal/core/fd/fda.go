// Package fd implements the node failure detection half of the CANELy
// protocol suite: the Failure Detection Agreement (FDA) micro-protocol of
// Figure 6 and the node failure detection protocol of Figure 8.
//
// FDA secures the reliable broadcast of a failure-sign message — a
// simplified and optimized "Eager Diffusion" (EDCAN) specialized to CAN
// remote frames: when a node's surveillance timer expires, the detecting
// node broadcasts a failure-sign remote frame; every recipient of the first
// copy delivers the notification upward and, in the absence of an
// equivalent pending transmit request, requests a retransmission of the
// same remote frame. Because identical remote frames cluster on the wire,
// the diffusion typically costs a single extra physical frame, yet it
// guarantees that even if the original transmission was inconsistently
// omitted at some nodes and the detector crashed, every correct node still
// delivers the failure notification.
//
// Both entities are sans-I/O state machines: they consume proto.Events and
// emit proto.Commands, and hold no scheduler, layer or trace handles. The
// runtime binding (internal/stack) executes the commands; the composite
// core (internal/core) routes the inter-core kinds.
package fd

import (
	"hash/maphash"

	"canely/internal/can"
	"canely/internal/core/proto"
)

// FDA is the failure detection agreement micro-protocol core at one node.
type FDA struct {
	// fsNdup counts failure-sign duplicates per failed node; fsNreq counts
	// local transmit requests. Names follow Figure 6. Indexed by node id:
	// these counters sit on the remote-frame indication path.
	fsNdup [can.MaxNodes]int
	fsNreq [can.MaxNodes]int
}

// NewFDA creates the protocol core.
func NewFDA() *FDA { return &FDA{} }

// Clone returns an independent deep copy of the core.
func (f *FDA) Clone() *FDA {
	c := *f
	return &c
}

// Step consumes one event and returns a fresh command slice (nil when the
// event produced no action). Compatibility wrapper over StepInto.
func (f *FDA) Step(ev proto.Event) []proto.Command {
	var buf proto.CommandBuf
	f.StepInto(ev, &buf)
	return buf.Commands()
}

// StepInto consumes one event, appending the resulting commands to buf.
func (f *FDA) StepInto(ev proto.Event, buf *proto.CommandBuf) {
	switch ev.Kind {
	case proto.EvFDARequest:
		f.request(ev.Node, buf)
	case proto.EvFDACancel:
		f.cancel(ev.Node, buf)
	case proto.EvFDAForget:
		if ev.Node.Valid() {
			f.Forget(ev.Node)
		}
	case proto.EvRTRInd:
		f.onRTRInd(ev.MID, buf)
	}
}

// request invokes the protocol for a failed node (fda-can.req, Figure 6
// lines s00–s05): a single transmit request for the failure-sign message.
func (f *FDA) request(failed can.NodeID, buf *proto.CommandBuf) {
	if !failed.Valid() {
		return
	}
	f.fsNreq[failed]++
	if f.fsNreq[failed] == 1 {
		buf.Put(proto.SendRTR(can.FDASign(failed)))
	}
}

// cancel retracts the local failure-sign request for a node whose
// surveillance was stopped before any copy of the sign was observed. Once
// a copy has circulated the sign is public knowledge and must diffuse; the
// retraction then has no effect.
func (f *FDA) cancel(failed can.NodeID, buf *proto.CommandBuf) {
	if !failed.Valid() {
		return
	}
	if f.fsNreq[failed] == 0 || f.fsNdup[failed] != 0 {
		return
	}
	f.fsNreq[failed] = 0
	buf.Put(proto.Abort(can.FDASign(failed)))
}

// onRTRInd handles failure-sign arrivals (Figure 6 lines r00–r09). The
// first copy is delivered upward and eagerly re-diffused unless an
// equivalent transmit request is already pending (own included — the
// can-rtr.ind covers own transmissions, so the original sender counts its
// own frame as the first duplicate and does not re-request).
func (f *FDA) onRTRInd(mid can.MID, buf *proto.CommandBuf) {
	if mid.Type != can.TypeFDA {
		return
	}
	failed := can.NodeID(mid.Param)
	if !failed.Valid() {
		return
	}
	f.fsNdup[failed]++
	if f.fsNdup[failed] != 1 {
		return
	}
	buf.Put(proto.FDANty(failed))
	f.fsNreq[failed]++
	if f.fsNreq[failed] == 1 {
		buf.Put(proto.SendRTRUnlessPending(mid))
	}
}

// Fingerprint writes the core's complete mutable state into h (see the
// encoding rules in proto's fingerprint helpers). The counter arrays are
// sparse, so only non-zero slots are written, preceded by their count.
func (f *FDA) Fingerprint(h *maphash.Hash) {
	n := 0
	for i := range f.fsNdup {
		if f.fsNdup[i] != 0 || f.fsNreq[i] != 0 {
			n++
		}
	}
	proto.HashU64(h, uint64(n))
	for i := range f.fsNdup {
		if f.fsNdup[i] != 0 || f.fsNreq[i] != 0 {
			proto.HashU64(h, uint64(i))
			proto.HashU64(h, uint64(f.fsNdup[i]))
			proto.HashU64(h, uint64(f.fsNreq[i]))
		}
	}
}

// Duplicates returns how many failure-sign copies were observed for a node
// (diagnostics and the protocol-efficiency experiments).
func (f *FDA) Duplicates(failed can.NodeID) int { return f.fsNdup[failed] }

// Forget clears protocol state for a node, allowing a much-later
// reintegration to fail again. The paper assumes a removed node "does not
// initiate a reintegration attempt before a period much higher than Tm has
// elapsed"; the membership layer calls Forget when that period is safely
// over (at reintegration).
func (f *FDA) Forget(failed can.NodeID) {
	f.fsNdup[failed] = 0
	f.fsNreq[failed] = 0
}
