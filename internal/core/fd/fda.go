// Package fd implements the node failure detection half of the CANELy
// protocol suite: the Failure Detection Agreement (FDA) micro-protocol of
// Figure 6 and the node failure detection protocol of Figure 8.
//
// FDA secures the reliable broadcast of a failure-sign message — a
// simplified and optimized "Eager Diffusion" (EDCAN) specialized to CAN
// remote frames: when a node's surveillance timer expires, the detecting
// node broadcasts a failure-sign remote frame; every recipient of the first
// copy delivers the notification upward and, in the absence of an
// equivalent pending transmit request, requests a retransmission of the
// same remote frame. Because identical remote frames cluster on the wire,
// the diffusion typically costs a single extra physical frame, yet it
// guarantees that even if the original transmission was inconsistently
// omitted at some nodes and the detector crashed, every correct node still
// delivers the failure notification.
package fd

import (
	"canely/internal/can"
	"canely/internal/canlayer"
)

// FDA is the failure detection agreement micro-protocol entity at one node.
type FDA struct {
	layer  *canlayer.Layer
	notify []func(failed can.NodeID)

	// fsNdup counts failure-sign duplicates per failed node; fsNreq counts
	// local transmit requests. Names follow Figure 6. Indexed by node id:
	// these counters sit on the remote-frame indication path.
	fsNdup [can.MaxNodes]int
	fsNreq [can.MaxNodes]int
}

// NewFDA creates the protocol entity and hooks it to the layer's remote
// frame indications.
func NewFDA(layer *canlayer.Layer) *FDA {
	f := &FDA{layer: layer}
	layer.HandleRTRInd(f.onRTRInd)
	return f
}

// Notify registers an fda-can.nty consumer: the consistent notification
// that a node failed.
func (f *FDA) Notify(fn func(failed can.NodeID)) {
	f.notify = append(f.notify, fn)
}

// Request invokes the protocol for a failed node (fda-can.req, Figure 6
// lines s00–s05): a single transmit request for the failure-sign message.
func (f *FDA) Request(failed can.NodeID) {
	f.fsNreq[failed]++
	if f.fsNreq[failed] == 1 {
		// Request errors mean the local controller is dead (crashed or
		// bus-off); a dead node has no obligations.
		_ = f.layer.RTRReq(can.FDASign(failed))
	}
}

// onRTRInd handles failure-sign arrivals (Figure 6 lines r00–r09). The
// first copy is delivered upward and eagerly re-diffused unless an
// equivalent transmit request is already pending (own included — the
// can-rtr.ind covers own transmissions, so the original sender counts its
// own frame as the first duplicate and does not re-request).
func (f *FDA) onRTRInd(mid can.MID) {
	if mid.Type != can.TypeFDA {
		return
	}
	failed := can.NodeID(mid.Param)
	if !failed.Valid() {
		return
	}
	f.fsNdup[failed]++
	if f.fsNdup[failed] != 1 {
		return
	}
	for _, fn := range f.notify {
		fn(failed)
	}
	f.fsNreq[failed]++
	if f.fsNreq[failed] == 1 && !f.layer.PendingEquivalentRTR(mid) {
		_ = f.layer.RTRReq(can.FDASign(failed))
	}
}

// Duplicates returns how many failure-sign copies were observed for a node
// (diagnostics and the protocol-efficiency experiments).
func (f *FDA) Duplicates(failed can.NodeID) int { return f.fsNdup[failed] }

// Forget clears protocol state for a node, allowing a much-later
// reintegration to fail again. The paper assumes a removed node "does not
// initiate a reintegration attempt before a period much higher than Tm has
// elapsed"; the membership layer calls Forget when that period is safely
// over (at reintegration).
func (f *FDA) Forget(failed can.NodeID) {
	f.fsNdup[failed] = 0
	f.fsNreq[failed] = 0
}
