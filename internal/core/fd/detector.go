package fd

import (
	"fmt"
	"time"

	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
	"canely/internal/trace"
)

// Config parameterizes the failure detection protocol of Figure 8.
type Config struct {
	// Tb is the heartbeat period: the maximum interval between consecutive
	// life-sign transmit requests at a node. The local surveillance timer
	// runs at Tb.
	Tb time.Duration
	// Ttd is the bound on the network message transmission delay
	// (Ttd = Tqueue + Ttx + Tina, per MCAN4). Timers monitoring remote
	// nodes run at Tb+Ttd.
	Ttd time.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tb <= 0 {
		return fmt.Errorf("fd: heartbeat period Tb must be positive, got %v", c.Tb)
	}
	if c.Ttd <= 0 {
		return fmt.Errorf("fd: transmission delay bound Ttd must be positive, got %v", c.Ttd)
	}
	return nil
}

// DetectionLatency returns the worst-case interval between a node's crash
// and the delivery of the failure notification at correct nodes: the
// remote surveillance window plus the failure-sign diffusion delay.
func (c Config) DetectionLatency() time.Duration {
	return c.Tb + 2*c.Ttd
}

// Detector is the node failure detection protocol entity at one node
// (Figure 8). It monitors a configurable set of nodes through per-node
// surveillance deadlines; node activity is observed implicitly from data
// traffic (can-data.nty, own transmissions included) and explicitly from
// life-sign (ELS) remote frames. Expiry of the local deadline triggers an
// ELS broadcast; expiry of a remote deadline triggers the FDA
// micro-protocol.
//
// Surveillance restarts on every delivered frame but almost never expires,
// so the deadlines are plain array slots and a single scan event per
// detector chases the earliest one: a restart is two stores, and the
// scheduler carries one pending event per node instead of one per
// (node, monitored node) pair.
type Detector struct {
	cfg   Config
	sched *sim.Scheduler
	layer *canlayer.Layer
	fda   *FDA
	tr    *trace.Trace

	local can.NodeID
	// deadlines is indexed by node id; armed is the set of ids under
	// surveillance. A slot is meaningful only while its bit is set.
	deadlines [can.MaxNodes]sim.Time
	armed     can.NodeSet
	// scanEv is the pending scan event; scanAt is its instant. Invariant:
	// while any node is armed, scanEv is pending with
	// scanAt <= min(deadlines of armed nodes).
	scanEv *sim.Event
	scanAt sim.Time
	// scanFn is the pre-bound d.scan method value: binding at every re-arm
	// would allocate a fresh closure each time.
	scanFn func()
	notify []func(failed can.NodeID)

	// lifeSigns counts explicit life-sign broadcasts for the bandwidth
	// experiments.
	lifeSigns int
}

// NewDetector wires a detector to the layer and its FDA companion.
func NewDetector(sched *sim.Scheduler, layer *canlayer.Layer, fda *FDA, cfg Config, tr *trace.Trace) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := &Detector{
		cfg:   cfg,
		sched: sched,
		layer: layer,
		fda:   fda,
		tr:    tr,
		local: layer.NodeID(),
	}
	d.scanFn = d.scan
	layer.HandleDataNty(d.onDataNty)
	layer.HandleRTRInd(d.onRTRInd)
	fda.Notify(d.onFDANty)
	return d, nil
}

// Notify registers an fd-can.nty consumer — in the CANELy stack, the
// companion site membership protocol.
func (d *Detector) Notify(fn func(failed can.NodeID)) {
	d.notify = append(d.notify, fn)
}

// Start begins surveillance of a node (fd-can.req(START,r), lines f00–f02).
// Starting an already-monitored node restarts its timer.
func (d *Detector) Start(r can.NodeID) {
	d.alarmStart(r)
}

// Stop ends surveillance of a node (fd-can.req(STOP,r), lines f17–f19).
func (d *Detector) Stop(r can.NodeID) {
	d.armed = d.armed.Remove(r)
}

// Monitoring reports whether node r is under surveillance.
func (d *Detector) Monitoring(r can.NodeID) bool {
	return d.armed.Contains(r)
}

// LifeSigns returns the number of explicit life-sign broadcasts requested.
func (d *Detector) LifeSigns() int { return d.lifeSigns }

// alarmStart implements fd-alarm-start (lines a00–a06): the local timer
// runs at Tb, remote surveillance at Tb+Ttd.
func (d *Detector) alarmStart(r can.NodeID) {
	period := d.cfg.Tb
	if r != d.local {
		period += d.cfg.Ttd
	}
	d.deadlines[r] = d.sched.Now().Add(period)
	d.armed = d.armed.Add(r)
	d.ensureScan(d.deadlines[r])
}

// ensureScan keeps the scan-event invariant: a pending event no later than
// the given deadline. Deadlines almost always move forward, so the common
// case is a no-op; the event "chases" the true minimum when it fires.
func (d *Detector) ensureScan(at sim.Time) {
	if d.scanEv != nil && d.scanEv.Pending() && d.scanAt <= at {
		return
	}
	if d.scanEv != nil {
		d.scanEv.Cancel()
	}
	d.scanAt = at
	d.scanEv = d.sched.At(at, d.scanFn)
}

// scan fires expired surveillance deadlines and re-arms at the earliest
// remaining one.
func (d *Detector) scan() {
	d.scanEv = nil
	now := d.sched.Now()
	var expired can.NodeSet
	next := sim.Never
	for s := d.armed; !s.Empty(); {
		r := s.Lowest()
		s = s.Remove(r)
		if dl := d.deadlines[r]; dl <= now {
			expired = expired.Add(r)
		} else if dl < next {
			next = dl
		}
	}
	d.armed = d.armed.Diff(expired)
	for s := expired; !s.Empty(); {
		r := s.Lowest()
		s = s.Remove(r)
		d.expire(r)
	}
	// expire may have re-armed slots (the local ELS backstop) and advanced
	// the invariant through ensureScan; cover the survivors too.
	if next != sim.Never {
		d.ensureScan(next)
	}
}

// onDataNty observes implicit node activity: every data frame (own
// transmissions included) restarts the transmitter's surveillance timer
// (lines f03–f05).
func (d *Detector) onDataNty(mid can.MID) {
	d.activity(mid.Src)
}

// onRTRInd observes explicit life-signs (lines f03–f05). Only ELS remote
// frames carry a node identity usable as an activity signal; other remote
// frames are clustered and do not identify their transmitter.
func (d *Detector) onRTRInd(mid can.MID) {
	if mid.Type == can.TypeELS {
		d.activity(can.NodeID(mid.Param))
	}
}

func (d *Detector) activity(r can.NodeID) {
	if !r.Valid() {
		return
	}
	if d.armed.Contains(r) {
		d.alarmStart(r)
	}
}

// expire handles surveillance timer expiry (lines f06–f12): the local node
// broadcasts an explicit life-sign; a silent remote node is reported to
// the FDA micro-protocol.
func (d *Detector) expire(r can.NodeID) {
	if r == d.local {
		d.lifeSigns++
		d.tr.Emit(trace.KindELS, int(d.local), "explicit life-sign")
		_ = d.layer.RTRReq(can.ELSSign(d.local))
		// The timer restarts on the self-reception of the ELS (f03); if the
		// bus is congested the re-arm happens only when the frame makes it
		// out, exactly like the hardware behaves. Re-arm here as a backstop
		// so a lost ELS does not silence the node forever.
		d.alarmStart(r)
		return
	}
	d.tr.Emit(trace.KindFDNotify, int(d.local), "timer expired for %v", r)
	d.fda.Request(r)
}

// onFDANty completes the protocol (lines f13–f16): a consistent
// failure-sign cancels the surveillance timer and delivers fd-can.nty to
// the layer above.
func (d *Detector) onFDANty(r can.NodeID) {
	d.armed = d.armed.Remove(r)
	d.tr.Emit(trace.KindFDANotify, int(d.local), "node %v failed", r)
	for _, fn := range d.notify {
		fn(r)
	}
}
