package fd

import (
	"fmt"
	"hash/maphash"
	"time"

	"canely/internal/can"
	"canely/internal/core/proto"
	"canely/internal/sim"
)

// Config parameterizes the failure detection protocol of Figure 8.
type Config struct {
	// Tb is the heartbeat period: the maximum interval between consecutive
	// life-sign transmit requests at a node. The local surveillance timer
	// runs at Tb.
	Tb time.Duration
	// Ttd is the bound on the network message transmission delay
	// (Ttd = Tqueue + Ttx + Tina, per MCAN4). Timers monitoring remote
	// nodes run at Tb+Ttd.
	Ttd time.Duration
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tb <= 0 {
		return fmt.Errorf("fd: heartbeat period Tb must be positive, got %v", c.Tb)
	}
	if c.Ttd <= 0 {
		return fmt.Errorf("fd: transmission delay bound Ttd must be positive, got %v", c.Ttd)
	}
	return nil
}

// DetectionLatency returns the worst-case interval between a node's crash
// and the delivery of the failure notification at correct nodes: the
// remote surveillance window plus the failure-sign diffusion delay.
func (c Config) DetectionLatency() time.Duration {
	return c.Tb + 2*c.Ttd
}

// Detector is the node failure detection protocol core at one node
// (Figure 8). It monitors a configurable set of nodes through per-node
// surveillance deadlines; node activity is observed implicitly from data
// traffic (can-data.nty, own transmissions included) and explicitly from
// life-sign (ELS) remote frames. Expiry of the local deadline triggers an
// ELS broadcast; expiry of a remote deadline triggers the FDA
// micro-protocol.
//
// Surveillance restarts on every delivered frame but almost never expires,
// so the deadlines are plain array slots and a single logical scan timer
// (proto.TimerFDScan) chases the earliest one: a restart is two stores and
// usually no command, and the scheduler behind the binding carries one
// pending event per node instead of one per (node, monitored node) pair.
type Detector struct {
	cfg   Config
	local can.NodeID

	// deadlines is indexed by node id; armed is the set of ids under
	// surveillance. A slot is meaningful only while its bit is set.
	deadlines [can.MaxNodes]sim.Time
	armed     can.NodeSet
	// scanAt is the instant of the pending scan timer. Invariant: while any
	// node is armed, the timer is pending with
	// scanAt <= min(deadlines of armed nodes).
	scanAt      sim.Time
	scanPending bool

	// fdaInFlight tracks remote nodes whose silence this detector reported
	// to the FDA micro-protocol and whose failure-sign has not yet been
	// agreed. suppress marks nodes whose surveillance was stopped while
	// such a report was in flight: a late fda-can.nty for them is stale
	// and must not surface as a failure (fd.Detector.Stop contract).
	fdaInFlight can.NodeSet
	suppress    can.NodeSet

	// lifeSigns counts explicit life-sign broadcasts for the bandwidth
	// experiments.
	lifeSigns int
}

// NewDetector creates the protocol core for the given node.
func NewDetector(local can.NodeID, cfg Config) (*Detector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if !local.Valid() {
		return nil, fmt.Errorf("fd: invalid local node id %d", local)
	}
	return &Detector{cfg: cfg, local: local}, nil
}

// Clone returns an independent deep copy of the core.
func (d *Detector) Clone() *Detector {
	c := *d
	return &c
}

// Quiet reports that no failure-sign report of this detector awaits
// agreement: the only detector activity reachable from a quiet state whose
// surveillance deadlines keep being met is life-sign traffic and alarm
// restarts. The exploration engine's settle shortcut keys on it.
func (d *Detector) Quiet() bool { return d.fdaInFlight.Empty() }

// Step consumes one event and returns a fresh command slice (nil when the
// event produced no action). Compatibility wrapper over StepInto.
func (d *Detector) Step(ev proto.Event) []proto.Command {
	var buf proto.CommandBuf
	d.StepInto(ev, &buf)
	return buf.Commands()
}

// StepInto consumes one event, appending the resulting commands to buf.
// The common case — traffic activity restarting a forward-moving deadline —
// appends nothing.
func (d *Detector) StepInto(ev proto.Event, buf *proto.CommandBuf) {
	switch ev.Kind {
	case proto.EvDataNty:
		// Implicit node activity: every data frame (own transmissions
		// included) restarts the transmitter's surveillance timer
		// (lines f03–f05).
		d.activity(ev.MID.Src, ev.At, buf)
	case proto.EvRTRInd:
		// Explicit life-signs (lines f03–f05). Only ELS remote frames
		// carry a node identity usable as an activity signal; other
		// remote frames are clustered and do not identify their
		// transmitter.
		if ev.MID.Type == can.TypeELS {
			d.activity(can.NodeID(ev.MID.Param), ev.At, buf)
		}
	case proto.EvTimerFired:
		if ev.Timer == proto.TimerFDScan {
			d.scan(ev.At, buf)
		}
	case proto.EvFDStart:
		d.start(ev.Node, ev.At, buf)
	case proto.EvFDStop:
		d.stop(ev.Node, buf)
	case proto.EvFDANty:
		d.onFDANty(ev.Node, buf)
	}
}

// Fingerprint writes the detector's complete mutable state into h. A
// deadline slot is meaningful only while its armed bit is set, and scanAt
// only while the scan timer is pending, so unguarded residue is skipped —
// logically equal states hash equal.
func (d *Detector) Fingerprint(h *maphash.Hash) {
	proto.HashU64(h, uint64(d.local))
	proto.HashU64(h, uint64(d.armed))
	for s := d.armed; !s.Empty(); {
		r := s.Lowest()
		s = s.Remove(r)
		proto.HashU64(h, uint64(d.deadlines[r]))
	}
	proto.HashBool(h, d.scanPending)
	if d.scanPending {
		proto.HashU64(h, uint64(d.scanAt))
	}
	proto.HashU64(h, uint64(d.fdaInFlight))
	proto.HashU64(h, uint64(d.suppress))
	proto.HashU64(h, uint64(d.lifeSigns))
}

// Monitoring reports whether node r is under surveillance.
func (d *Detector) Monitoring(r can.NodeID) bool {
	return d.armed.Contains(r)
}

// LifeSigns returns the number of explicit life-sign broadcasts requested.
func (d *Detector) LifeSigns() int { return d.lifeSigns }

// start begins surveillance of a node (fd-can.req(START,r), lines f00–f02).
// Starting an already-monitored node restarts its timer. A fresh start also
// clears any stale-notification suppression left by a Stop.
func (d *Detector) start(r can.NodeID, at sim.Time, buf *proto.CommandBuf) {
	if !r.Valid() {
		return
	}
	d.suppress = d.suppress.Remove(r)
	d.fdaInFlight = d.fdaInFlight.Remove(r)
	d.alarmStart(r, at, buf)
}

// stop ends surveillance of a node (fd-can.req(STOP,r), lines f17–f19). If
// this detector has an unagreed failure-sign request in flight for the
// node, the request is retracted and any late agreement is suppressed, so
// a stale expiry cannot surface after surveillance was disabled.
func (d *Detector) stop(r can.NodeID, buf *proto.CommandBuf) {
	if !r.Valid() {
		return
	}
	d.armed = d.armed.Remove(r)
	if d.fdaInFlight.Contains(r) {
		d.suppress = d.suppress.Add(r)
		buf.Put(proto.FDACancel(r))
	}
}

// alarmStart implements fd-alarm-start (lines a00–a06): the local timer
// runs at Tb, remote surveillance at Tb+Ttd.
func (d *Detector) alarmStart(r can.NodeID, at sim.Time, buf *proto.CommandBuf) {
	period := d.cfg.Tb
	if r != d.local {
		period += d.cfg.Ttd
	}
	d.deadlines[r] = at.Add(period)
	d.armed = d.armed.Add(r)
	d.ensureScan(d.deadlines[r], at, buf)
}

// ensureScan keeps the scan-timer invariant: a pending timer no later than
// the given deadline. Deadlines almost always move forward, so the common
// case is a no-op; the timer "chases" the true minimum when it fires.
func (d *Detector) ensureScan(at, now sim.Time, buf *proto.CommandBuf) {
	if d.scanPending && d.scanAt <= at {
		return
	}
	d.scanAt = at
	d.scanPending = true
	buf.Put(proto.SetTimer(proto.TimerFDScan, at.Sub(now)))
}

// scan fires expired surveillance deadlines and re-arms at the earliest
// remaining one.
func (d *Detector) scan(now sim.Time, buf *proto.CommandBuf) {
	d.scanPending = false
	var expired can.NodeSet
	next := sim.Never
	for s := d.armed; !s.Empty(); {
		r := s.Lowest()
		s = s.Remove(r)
		if dl := d.deadlines[r]; dl <= now {
			expired = expired.Add(r)
		} else if dl < next {
			next = dl
		}
	}
	d.armed = d.armed.Diff(expired)
	for s := expired; !s.Empty(); {
		r := s.Lowest()
		s = s.Remove(r)
		d.expire(r, now, buf)
	}
	// expire may have re-armed slots (the local ELS backstop) and advanced
	// the invariant through ensureScan; cover the survivors too.
	if next != sim.Never {
		d.ensureScan(next, now, buf)
	}
}

func (d *Detector) activity(r can.NodeID, at sim.Time, buf *proto.CommandBuf) {
	if !r.Valid() {
		return
	}
	if d.armed.Contains(r) {
		d.alarmStart(r, at, buf)
	}
}

// expire handles surveillance timer expiry (lines f06–f12): the local node
// broadcasts an explicit life-sign; a silent remote node is reported to
// the FDA micro-protocol.
func (d *Detector) expire(r can.NodeID, now sim.Time, buf *proto.CommandBuf) {
	if r == d.local {
		d.lifeSigns++
		buf.Put(proto.TraceELS())
		buf.Put(proto.SendRTR(can.ELSSign(d.local)))
		// The timer restarts on the self-reception of the ELS (f03); if the
		// bus is congested the re-arm happens only when the frame makes it
		// out, exactly like the hardware behaves. Re-arm here as a backstop
		// so a lost ELS does not silence the node forever.
		d.alarmStart(r, now, buf)
		return
	}
	d.fdaInFlight = d.fdaInFlight.Add(r)
	buf.Put(proto.TraceTimerExpired(r))
	buf.Put(proto.FDARequest(r))
}

// onFDANty completes the protocol (lines f13–f16): a consistent
// failure-sign cancels the surveillance timer and delivers fd-can.nty to
// the layer above — unless surveillance of the node was stopped while this
// detector's own report was in flight, in which case the agreement is
// stale and dropped locally.
func (d *Detector) onFDANty(r can.NodeID, buf *proto.CommandBuf) {
	if d.suppress.Contains(r) {
		d.suppress = d.suppress.Remove(r)
		d.fdaInFlight = d.fdaInFlight.Remove(r)
		return
	}
	d.armed = d.armed.Remove(r)
	d.fdaInFlight = d.fdaInFlight.Remove(r)
	buf.Put(proto.TraceNodeFailed(r))
	buf.Put(proto.FDNty(r))
}
