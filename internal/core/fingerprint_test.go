package core_test

import (
	"hash/maphash"
	"testing"
	"time"

	"canely/internal/can"
	"canely/internal/core"
	"canely/internal/core/fd"
	"canely/internal/core/membership"
	"canely/internal/core/proto"
	"canely/internal/fptest"
	"canely/internal/sim"
)

func fpAt(ms int) sim.Time { return sim.Time(time.Duration(ms) * time.Millisecond) }

// TestNodeFingerprint checks the composite core's fingerprint: it must
// cover every sub-core, so events that only touch one layer (a join sign
// reaches membership, a life-sign reaches the detector) still perturb the
// whole-node hash, while idempotent re-deliveries leave it unchanged.
func TestNodeFingerprint(t *testing.T) {
	cfg := core.Config{
		FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
		Membership: membership.Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		},
	}
	fresh := func() fptest.Core {
		n, err := core.New(0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	fptest.Check(t, fresh, []fptest.Step{
		{Name: "bootstrap", Ev: proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 1), At: fpAt(0)}, Mutates: true},
		{Name: "join sign reaches membership", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.JoinSign(2), At: fpAt(1)}, Mutates: true},
		{Name: "life-sign restarts surveillance", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.ELSSign(1), At: fpAt(5)}, Mutates: true},
		{Name: "equal life-sign is idempotent", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.ELSSign(1), At: fpAt(5)}},
		{Name: "membership cycle", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle, At: fpAt(50), Node: 0}, Mutates: true},
	})
}

// TestNodeClone checks the composite core's Clone contract: every sub-core
// deep-copied, the RHA environment re-bound to the cloned membership
// protocol — stepping a clone through inter-core routing chains must track
// the reference run without perturbing its original.
func TestNodeClone(t *testing.T) {
	cfg := core.Config{
		FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
		Membership: membership.Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		},
	}
	fresh := func() fptest.Core {
		n, err := core.New(0, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	fptest.CheckClone(t, fresh,
		func(c fptest.Core) fptest.Core { return c.(*core.Node).Clone() },
		[]fptest.Step{
			{Name: "bootstrap", Ev: proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 1), At: fpAt(0)}, Mutates: true},
			{Name: "join sign reaches membership", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.JoinSign(2), At: fpAt(1)}, Mutates: true},
			{Name: "life-sign restarts surveillance", Ev: proto.Event{Kind: proto.EvRTRInd, MID: can.ELSSign(1), At: fpAt(5)}, Mutates: true},
			{Name: "membership cycle starts agreement", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle, At: fpAt(50), Node: 0}, Mutates: true},
			{Name: "agreement terminates", Ev: proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerRHATerm, At: fpAt(55), Node: 0}, Mutates: true},
		})
}

// TestNodeRestore checks the allocation-free restore path the exploration
// engine's snapshot pool resumes through: restoring an advanced node onto a
// diverged one must make it hash identical to the source, with no aliasing
// between the two afterwards.
func TestNodeRestore(t *testing.T) {
	cfg := core.Config{
		FD: fd.Config{Tb: 10 * time.Millisecond, Ttd: 2 * time.Millisecond},
		Membership: membership.Config{
			Tm:        50 * time.Millisecond,
			TjoinWait: 120 * time.Millisecond,
			RHA:       membership.RHAConfig{Trha: 5 * time.Millisecond, J: 2},
		},
	}
	sum := func(n *core.Node) uint64 {
		var h maphash.Hash
		h.SetSeed(fpSeed)
		n.Fingerprint(&h)
		return h.Sum64()
	}
	src, err := core.New(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src.Step(proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 1), At: fpAt(0)})
	src.Step(proto.Event{Kind: proto.EvRTRInd, MID: can.JoinSign(2), At: fpAt(1)})
	src.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerMshCycle, At: fpAt(50), Node: 0})

	dst, err := core.New(0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst.Step(proto.Event{Kind: proto.EvBootstrap, View: can.MakeSet(0, 2), At: fpAt(0)})
	dst.Restore(src)
	if sum(dst) != sum(src) {
		t.Fatal("restored node does not hash like its source")
	}
	before := sum(src)
	dst.Step(proto.Event{Kind: proto.EvTimerFired, Timer: proto.TimerRHATerm, At: fpAt(55), Node: 0})
	if sum(src) != before {
		t.Fatal("stepping the restored node mutated the source: aliased state")
	}
	if sum(dst) == before {
		t.Fatal("restored node did not evolve")
	}
}

var fpSeed = maphash.MakeSeed()
