package proto

import (
	"encoding/binary"
	"hash/maphash"
)

// Fingerprint hashing helpers. Every pure protocol core exposes a canonical
//
//	Fingerprint(h *maphash.Hash)
//
// method that writes its complete mutable state into h in a fixed,
// documented order, so a whole system state (cores + modelled bus + timers)
// reduces to a stable 64-bit key. The state-space exploration engine
// (internal/explore) uses these keys to prune converged schedule branches:
// two states with equal fingerprints are treated as the same state, so a
// hash collision can only hide a schedule, never invent a violation.
//
// Encoding rules the core methods follow:
//
//   - fixed-width writes only (HashU64/HashBool), so streams of adjacent
//     cores cannot alias each other across a boundary;
//   - variable-length sections (sparse arrays, maps) are preceded by their
//     element count, or folded order-independently with Mix64 when the
//     container has no canonical iteration order;
//   - fields that are only meaningful under a guard (a pending timer's
//     instant, a pending frame's mid) are hashed only when the guard is
//     set, so logically equal states with different stale residue hash
//     equal.

// HashU64 writes v into h with a fixed 8-byte width.
func HashU64(h *maphash.Hash, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.Write(b[:])
}

// HashBool writes v into h as one byte.
func HashBool(h *maphash.Hash, v bool) {
	if v {
		h.WriteByte(1)
	} else {
		h.WriteByte(0)
	}
}

// Mix64 is the splitmix64 finalizer: a fast bijective mixer used to fold
// unordered containers (maps) into a single order-independent word — each
// entry is mixed on its own and the results XORed, so iteration order does
// not matter.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// MixPair folds a key/value pair into one word for XOR accumulation.
func MixPair(k, v uint64) uint64 {
	return Mix64(k*0x9e3779b97f4a7c15 ^ v)
}
