// Package proto defines the sans-I/O vocabulary of the CANELy protocol
// cores: the Event a core consumes and the Command it emits. The paper's
// protocols (Figures 6–9) are specified as reactive state machines — events
// in (frame indications, timer expiry, can-data.nty), actions out (queue a
// remote frame, set or cancel a timer, deliver a notification). A core is a
// pure struct with a single
//
//	Step(Event) []Command
//
// entry point; it holds no scheduler, layer or trace handles. The runtime
// binding (internal/stack) pumps events in and executes the returned
// commands against the simulated media; internal/replay re-executes cores
// from a recorded event log and asserts command-for-command equality; the
// interleaving explorer (internal/core) drives cores through permuted event
// orderings with no bus simulation at all.
//
// Both Event and Command are comparable value types (payloads are inlined
// into a fixed array — a CAN payload is at most 8 bytes), so replay
// verification is plain ==, and both serialize to JSON for captured logs.
//
// # Allocation discipline
//
// Step allocates a fresh command slice per call, which is fine for tests
// and replay but puts the allocator on the simulation hot path: a steady
// 1 Mbit/s bus delivers hundreds of frames per virtual second, and every
// delivery steps several cores at every node. The hot entry point is
// therefore
//
//	StepInto(Event, *CommandBuf)
//
// which appends into a caller-owned, reusable CommandBuf; Step is a thin
// compatibility wrapper over it. Trace output follows the same discipline:
// cores emit *lazy* trace commands (a TraceMsgID template plus operands
// already inlined in the Command) instead of pre-formatted strings, and the
// text is rendered by TraceText only when a trace sink is actually
// attached — a run on the fast substrate formats nothing at all.
package proto

import (
	"fmt"
	"strings"

	"canely/internal/can"
	"canely/internal/sim"
	"canely/internal/trace"
)

// TimerID names one of a core's logical timers. The binding owns the
// concrete alarm machinery; cores refer to timers only by these ids.
type TimerID uint8

const (
	// TimerFDScan is the failure detector's surveillance scan alarm: one
	// per node, chasing the earliest armed deadline (Figure 8).
	TimerFDScan TimerID = iota
	// TimerMshCycle is the membership cycle / join wait alarm (Figure 9).
	TimerMshCycle
	// TimerRHATerm is the RHA termination alarm Trha (Figure 7).
	TimerRHATerm
	// TimerFedAnnounce is the federation core's periodic digest announcement
	// alarm Tann (internal/federation).
	TimerFedAnnounce
	// TimerFedScan is the federation core's segment-staleness surveillance
	// alarm, chasing the earliest armed digest deadline like TimerFDScan.
	TimerFedScan
	// TimerGossipTick is the SWIM protocol-period alarm: every period the
	// gossip core probes its next round-robin target (internal/gossip).
	TimerGossipTick
	// TimerGossipAck is the SWIM probe deadline: direct-ack wait, then the
	// indirect (ping-req) wait of the probe in flight.
	TimerGossipAck
	// TimerGossipSuspect is the SWIM suspicion surveillance alarm, chasing
	// the earliest suspicion expiry like TimerFDScan.
	TimerGossipSuspect

	// NumTimers is the number of logical timers per node.
	NumTimers
)

// String names the timer.
func (t TimerID) String() string {
	switch t {
	case TimerFDScan:
		return "fd-scan"
	case TimerMshCycle:
		return "msh-cycle"
	case TimerRHATerm:
		return "rha-term"
	case TimerFedAnnounce:
		return "fed-announce"
	case TimerFedScan:
		return "fed-scan"
	case TimerGossipTick:
		return "gossip-tick"
	case TimerGossipAck:
		return "gossip-ack"
	case TimerGossipSuspect:
		return "gossip-suspect"
	}
	return fmt.Sprintf("timer(%d)", uint8(t))
}

// EventKind discriminates Event.
type EventKind uint8

const (
	// EvDataNty is can-data.nty: a data frame arrived (own transmissions
	// included), no payload. MID is set.
	EvDataNty EventKind = iota + 1
	// EvDataInd is can-data.ind: a data frame arrived with payload. MID and
	// Data are set.
	EvDataInd
	// EvRTRInd is can-rtr.ind: a remote frame arrived. MID is set.
	EvRTRInd
	// EvTimerFired reports expiry of the logical timer in Timer.
	EvTimerFired
	// EvBootstrap installs a pre-agreed initial view (View) at the
	// membership protocol.
	EvBootstrap
	// EvJoin is msh-can.req(JOIN).
	EvJoin
	// EvLeave is msh-can.req(LEAVE).
	EvLeave
	// EvFDStart is fd-can.req(START, Node): begin surveillance.
	EvFDStart
	// EvFDStop is fd-can.req(STOP, Node): end surveillance.
	EvFDStop
	// EvFDARequest is fda-can.req(Node): diffuse a failure-sign.
	EvFDARequest
	// EvFDACancel retracts a not-yet-observed local failure-sign request
	// for Node (surveillance was stopped while the request was in flight).
	EvFDACancel
	// EvFDANty is fda-can.nty(Node): a consistent failure-sign arrived.
	EvFDANty
	// EvFDNty is fd-can.nty(Node): the failure detector reports a crash.
	EvFDNty
	// EvRHARequest is rha-can.req: start a reception history agreement.
	EvRHARequest
	// EvRHAInit is rha-can.nty(INIT): an RHA execution began.
	EvRHAInit
	// EvRHAEnd is rha-can.nty(END, View): an RHA execution delivered the
	// agreed vector.
	EvRHAEnd
	// EvFedLocalView reports a segment-local membership view to the
	// federation core: Node carries the segment id, View the segment's
	// current member set (fed-can.nty in the hierarchical layer).
	EvFedLocalView
	// EvFDAForget clears the FDA diffusion counters for Node: the node
	// (re)entered the agreed membership view, so a later crash must be
	// agreeable afresh (fd.FDA.Forget's reintegration contract).
	EvFDAForget
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvDataNty:
		return "data-nty"
	case EvDataInd:
		return "data-ind"
	case EvRTRInd:
		return "rtr-ind"
	case EvTimerFired:
		return "timer"
	case EvBootstrap:
		return "bootstrap"
	case EvJoin:
		return "join"
	case EvLeave:
		return "leave"
	case EvFDStart:
		return "fd-start"
	case EvFDStop:
		return "fd-stop"
	case EvFDARequest:
		return "fda-req"
	case EvFDACancel:
		return "fda-cancel"
	case EvFDANty:
		return "fda-nty"
	case EvFDNty:
		return "fd-nty"
	case EvRHARequest:
		return "rha-req"
	case EvRHAInit:
		return "rha-init"
	case EvRHAEnd:
		return "rha-end"
	case EvFedLocalView:
		return "fed-local-view"
	case EvFDAForget:
		return "fda-forget"
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// Event is one input to a protocol core. Which fields are meaningful
// depends on Kind; unused fields stay zero so Events compare with ==.
type Event struct {
	Kind EventKind `json:"kind"`
	// At is the virtual instant the event was delivered. Cores use it to
	// compute deadlines; it never selects behaviour by itself.
	At sim.Time `json:"at"`
	// MID is the message identifier of frame events.
	MID can.MID `json:"mid,omitempty"`
	// Data/DataLen inline the payload of EvDataInd (≤ 8 bytes on CAN).
	Data    [can.MaxData]byte `json:"data,omitempty"`
	DataLen uint8             `json:"dataLen,omitempty"`
	// Timer identifies the alarm of EvTimerFired.
	Timer TimerID `json:"timer,omitempty"`
	// Node is the argument of the fd/fda request and notification events.
	Node can.NodeID `json:"node,omitempty"`
	// View is the argument of EvBootstrap and EvRHAEnd.
	View can.NodeSet `json:"view,omitempty"`
}

// Payload returns the inlined data bytes.
func (e Event) Payload() []byte { return e.Data[:e.DataLen] }

// WithPayload copies p into the event (panics beyond can.MaxData, like
// can.Frame.SetPayload: payload sizing is a static protocol property).
func (e Event) WithPayload(p []byte) Event {
	if len(p) > can.MaxData {
		panic(fmt.Sprintf("proto: payload of %d bytes exceeds %d", len(p), can.MaxData))
	}
	e.DataLen = uint8(copy(e.Data[:], p))
	return e
}

// String renders the event compactly, e.g. "rtr-ind ELS(n03)".
func (e Event) String() string {
	var sb strings.Builder
	sb.WriteString(e.Kind.String())
	switch e.Kind {
	case EvDataNty, EvRTRInd:
		fmt.Fprintf(&sb, " %v", e.MID)
	case EvDataInd:
		fmt.Fprintf(&sb, " %v data=%x", e.MID, e.Payload())
	case EvTimerFired:
		fmt.Fprintf(&sb, " %v", e.Timer)
	case EvBootstrap, EvRHAEnd:
		fmt.Fprintf(&sb, " %v", e.View)
	case EvFDStart, EvFDStop, EvFDARequest, EvFDACancel, EvFDANty, EvFDNty:
		fmt.Fprintf(&sb, " %v", e.Node)
	case EvFedLocalView:
		fmt.Fprintf(&sb, " s%02d %v", int(e.Node), e.View)
	}
	return sb.String()
}

// CommandKind discriminates Command.
type CommandKind uint8

const (
	// CmdSendRTR queues a remote frame (can-rtr.req). If UnlessPending is
	// set the request is suppressed when a wire-equivalent transmit request
	// is already queued locally (the FDA re-diffusion guard, Figure 6 r06).
	CmdSendRTR CommandKind = iota + 1
	// CmdSendData queues a data frame (can-data.req) with the inlined
	// payload.
	CmdSendData
	// CmdAbort cancels a pending transmit request (can-abort.req).
	CmdAbort
	// CmdSetTimer (re)arms the logical timer to fire Delay from the event
	// that produced the command.
	CmdSetTimer
	// CmdCancelTimer disarms the logical timer.
	CmdCancelTimer
	// CmdTrace emits a pre-formatted diagnostic trace event.
	CmdTrace
	// CmdNotifyView is msh-can.nty: deliver a membership change (Active,
	// Failed, Left) to the application.
	CmdNotifyView

	// The remaining kinds are inter-core notifications and requests. The
	// composite core (internal/core) routes them between the FDA, failure
	// detection, RHA and membership cores at their position in the command
	// stream — mirroring the synchronous upcalls of the layered stack — and
	// the binding treats them as notification hook points (or no-ops).

	// CmdFDARequest asks the FDA core to diffuse a failure-sign for Node.
	CmdFDARequest
	// CmdFDACancel retracts a local failure-sign request for Node.
	CmdFDACancel
	// CmdFDANty is fda-can.nty(Node): consistent failure-sign delivered.
	CmdFDANty
	// CmdFDNty is fd-can.nty(Node): the failure detector reports a crash.
	CmdFDNty
	// CmdFDStart is fd-can.req(START, Node).
	CmdFDStart
	// CmdFDStop is fd-can.req(STOP, Node).
	CmdFDStop
	// CmdRHARequest is rha-can.req.
	CmdRHARequest
	// CmdRHAInit is rha-can.nty(INIT).
	CmdRHAInit
	// CmdRHAEnd is rha-can.nty(END, View).
	CmdRHAEnd
	// CmdNotifySite is fed-can.nty: deliver a cross-segment site view change
	// (Active = live segment set, Failed = segments removed by this change)
	// to the application.
	CmdNotifySite
	// CmdFDAForget asks the FDA core to clear its diffusion counters for
	// Node, which just (re)entered the agreed membership view. Without it
	// a node expelled by a failure agreement and later readmitted could
	// never be expelled again: the stale counters swallow the new
	// failure-sign request.
	CmdFDAForget
)

// String names the command kind.
func (k CommandKind) String() string {
	switch k {
	case CmdSendRTR:
		return "send-rtr"
	case CmdSendData:
		return "send-data"
	case CmdAbort:
		return "abort"
	case CmdSetTimer:
		return "set-timer"
	case CmdCancelTimer:
		return "cancel-timer"
	case CmdTrace:
		return "trace"
	case CmdNotifyView:
		return "notify-view"
	case CmdFDARequest:
		return "fda-req"
	case CmdFDACancel:
		return "fda-cancel"
	case CmdFDANty:
		return "fda-nty"
	case CmdFDNty:
		return "fd-nty"
	case CmdFDStart:
		return "fd-start"
	case CmdFDStop:
		return "fd-stop"
	case CmdRHARequest:
		return "rha-req"
	case CmdRHAInit:
		return "rha-init"
	case CmdRHAEnd:
		return "rha-end"
	case CmdNotifySite:
		return "notify-site"
	case CmdFDAForget:
		return "fda-forget"
	}
	return fmt.Sprintf("command(%d)", uint8(k))
}

// Command is one output of a protocol core. Like Event it is a comparable
// value type.
type Command struct {
	Kind CommandKind `json:"kind"`
	// MID is the frame identifier of send/abort commands.
	MID can.MID `json:"mid,omitempty"`
	// UnlessPending suppresses CmdSendRTR when an equivalent transmit
	// request is already queued (evaluated by the executor at command
	// time, which is exactly when the layered implementation queried).
	UnlessPending bool `json:"unlessPending,omitempty"`
	// Data/DataLen inline the payload of CmdSendData.
	Data    [can.MaxData]byte `json:"data,omitempty"`
	DataLen uint8             `json:"dataLen,omitempty"`
	// Timer and Delay parameterize the timer commands.
	Timer TimerID      `json:"timer,omitempty"`
	Delay sim.Duration `json:"delay,omitempty"`
	// Node is the argument of the inter-core request/notification kinds.
	Node can.NodeID `json:"node,omitempty"`
	// Active, Failed and Left carry a CmdNotifyView change. Active doubles
	// as the old view of a TraceMsgViewChange trace command.
	Active can.NodeSet `json:"active,omitempty"`
	Failed can.NodeSet `json:"failed,omitempty"`
	Left   bool        `json:"left,omitempty"`
	// View is the agreed vector of CmdRHAEnd, and the NodeSet operand of
	// the lazy trace templates.
	View can.NodeSet `json:"rhaView,omitempty"`
	// TraceKind classifies a CmdTrace event. TraceMsg selects the lazy
	// message template (operands live in Node/Active/View); Msg carries
	// pre-formatted text for the eager Trace/Tracef path. TraceText renders
	// either on demand.
	TraceKind trace.Kind `json:"traceKind,omitempty"`
	TraceMsg  TraceMsgID `json:"traceMsg,omitempty"`
	Msg       string     `json:"msg,omitempty"`
}

// Payload returns the inlined data bytes.
func (c Command) Payload() []byte { return c.Data[:c.DataLen] }

// String renders the command compactly, e.g. "send-rtr FDA(n03)".
func (c Command) String() string {
	var sb strings.Builder
	sb.WriteString(c.Kind.String())
	switch c.Kind {
	case CmdSendRTR:
		fmt.Fprintf(&sb, " %v", c.MID)
		if c.UnlessPending {
			sb.WriteString(" unless-pending")
		}
	case CmdSendData:
		fmt.Fprintf(&sb, " %v data=%x", c.MID, c.Payload())
	case CmdAbort:
		fmt.Fprintf(&sb, " %v", c.MID)
	case CmdSetTimer:
		fmt.Fprintf(&sb, " %v %v", c.Timer, c.Delay)
	case CmdCancelTimer:
		fmt.Fprintf(&sb, " %v", c.Timer)
	case CmdTrace:
		fmt.Fprintf(&sb, " %s %q", c.TraceKind, c.TraceText())
	case CmdNotifyView:
		fmt.Fprintf(&sb, " active=%v failed=%v left=%t", c.Active, c.Failed, c.Left)
	case CmdFDARequest, CmdFDACancel, CmdFDAForget, CmdFDANty, CmdFDNty, CmdFDStart, CmdFDStop:
		fmt.Fprintf(&sb, " %v", c.Node)
	case CmdRHAEnd:
		fmt.Fprintf(&sb, " %v", c.View)
	case CmdNotifySite:
		fmt.Fprintf(&sb, " active=%v failed=%v", c.Active, c.Failed)
	}
	return sb.String()
}

// Constructors keep core code terse and uniform.

// SendRTR queues a remote frame.
func SendRTR(mid can.MID) Command { return Command{Kind: CmdSendRTR, MID: mid} }

// SendRTRUnlessPending queues a remote frame unless an equivalent request
// is already pending.
func SendRTRUnlessPending(mid can.MID) Command {
	return Command{Kind: CmdSendRTR, MID: mid, UnlessPending: true}
}

// SendData queues a data frame with the payload.
func SendData(mid can.MID, p []byte) Command {
	c := Command{Kind: CmdSendData, MID: mid}
	if len(p) > can.MaxData {
		panic(fmt.Sprintf("proto: payload of %d bytes exceeds %d", len(p), can.MaxData))
	}
	c.DataLen = uint8(copy(c.Data[:], p))
	return c
}

// Abort cancels a pending transmit request.
func Abort(mid can.MID) Command { return Command{Kind: CmdAbort, MID: mid} }

// SetTimer (re)arms a logical timer.
func SetTimer(id TimerID, d sim.Duration) Command {
	return Command{Kind: CmdSetTimer, Timer: id, Delay: d}
}

// CancelTimer disarms a logical timer.
func CancelTimer(id TimerID) Command { return Command{Kind: CmdCancelTimer, Timer: id} }

// Trace emits a pre-formatted diagnostic event. The protocol cores use the
// lazy Trace* template constructors instead — this eager form exists for
// tests and ad-hoc diagnostics.
func Trace(kind trace.Kind, msg string) Command {
	return Command{Kind: CmdTrace, TraceKind: kind, Msg: msg}
}

// Tracef emits a formatted diagnostic event (eager; see Trace).
func Tracef(kind trace.Kind, format string, args ...any) Command {
	return Command{Kind: CmdTrace, TraceKind: kind, Msg: fmt.Sprintf(format, args...)}
}

// TraceMsgID selects a lazy trace message template. A lazy trace command
// carries the template id and its operands (Node, Active, View) instead of
// a formatted string, so emitting one costs no allocation; the text is
// rendered by TraceText only when a sink consumes it.
type TraceMsgID uint8

const (
	// TraceMsgNone marks an eager trace command: Msg carries the text.
	TraceMsgNone TraceMsgID = iota
	// TraceMsgELS renders "explicit life-sign".
	TraceMsgELS
	// TraceMsgTimerExpired renders "timer expired for <Node>".
	TraceMsgTimerExpired
	// TraceMsgNodeFailed renders "node <Node> failed".
	TraceMsgNodeFailed
	// TraceMsgJoinRequested renders "join requested".
	TraceMsgJoinRequested
	// TraceMsgJoinRetried renders "join retried".
	TraceMsgJoinRetried
	// TraceMsgLeaveRequested renders "leave requested".
	TraceMsgLeaveRequested
	// TraceMsgViewChange renders "view <Active> -> <View>".
	TraceMsgViewChange
	// TraceMsgRHAVector renders "rhv=<View>" (RHA start and end).
	TraceMsgRHAVector
	// TraceMsgFedDigest renders "digest s<Node> view=<View>".
	TraceMsgFedDigest
	// TraceMsgSegmentStale renders "segment s<Node> stale".
	TraceMsgSegmentStale
	// TraceMsgSiteChange renders "site <Active> -> <View>".
	TraceMsgSiteChange
)

// TraceText renders the message of a CmdTrace command: the lazy template
// when TraceMsg is set, the pre-formatted Msg otherwise. Only trace sinks
// call it — a run without one never formats.
func (c Command) TraceText() string {
	switch c.TraceMsg {
	case TraceMsgELS:
		return "explicit life-sign"
	case TraceMsgTimerExpired:
		return fmt.Sprintf("timer expired for %v", c.Node)
	case TraceMsgNodeFailed:
		return fmt.Sprintf("node %v failed", c.Node)
	case TraceMsgJoinRequested:
		return "join requested"
	case TraceMsgJoinRetried:
		return "join retried"
	case TraceMsgLeaveRequested:
		return "leave requested"
	case TraceMsgViewChange:
		return fmt.Sprintf("view %v -> %v", c.Active, c.View)
	case TraceMsgRHAVector:
		return fmt.Sprintf("rhv=%v", c.View)
	case TraceMsgFedDigest:
		return fmt.Sprintf("digest s%02d view=%v", int(c.Node), c.View)
	case TraceMsgSegmentStale:
		return fmt.Sprintf("segment s%02d stale", int(c.Node))
	case TraceMsgSiteChange:
		return fmt.Sprintf("site %v -> %v", c.Active, c.View)
	}
	return c.Msg
}

// TraceELS traces an explicit life-sign broadcast.
func TraceELS() Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindELS, TraceMsg: TraceMsgELS}
}

// TraceTimerExpired traces a surveillance expiry for a remote node.
func TraceTimerExpired(r can.NodeID) Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindFDNotify, TraceMsg: TraceMsgTimerExpired, Node: r}
}

// TraceNodeFailed traces a consistent failure-sign agreement.
func TraceNodeFailed(r can.NodeID) Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindFDANotify, TraceMsg: TraceMsgNodeFailed, Node: r}
}

// TraceJoinRequested traces a local join request.
func TraceJoinRequested() Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindJoinRequest, TraceMsg: TraceMsgJoinRequested}
}

// TraceJoinRetried traces a join retry after an unintegrated join wait.
func TraceJoinRetried() Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindJoinRequest, TraceMsg: TraceMsgJoinRetried}
}

// TraceLeaveRequested traces a local leave request.
func TraceLeaveRequested() Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindLeaveRequest, TraceMsg: TraceMsgLeaveRequested}
}

// TraceViewChange traces a membership view update old -> new.
func TraceViewChange(old, now can.NodeSet) Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindViewChange, TraceMsg: TraceMsgViewChange, Active: old, View: now}
}

// TraceRHAStart traces the initial vector of an RHA execution.
func TraceRHAStart(rhv can.NodeSet) Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindRHAStart, TraceMsg: TraceMsgRHAVector, View: rhv}
}

// TraceRHAEnd traces the agreed vector of a completed RHA execution.
func TraceRHAEnd(rhv can.NodeSet) Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindRHAEnd, TraceMsg: TraceMsgRHAVector, View: rhv}
}

// TraceFedDigest traces a federation digest announcement for a segment.
func TraceFedDigest(seg can.NodeID, view can.NodeSet) Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindFedDigest, TraceMsg: TraceMsgFedDigest, Node: seg, View: view}
}

// TraceSegmentStale traces a staleness expiry for a remote segment.
func TraceSegmentStale(seg can.NodeID) Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindSiteChange, TraceMsg: TraceMsgSegmentStale, Node: seg}
}

// TraceSiteChange traces a cross-segment site view update old -> new.
func TraceSiteChange(old, now can.NodeSet) Command {
	return Command{Kind: CmdTrace, TraceKind: trace.KindSiteChange, TraceMsg: TraceMsgSiteChange, Active: old, View: now}
}

// NotifySite delivers a cross-segment site view change.
func NotifySite(active, failed can.NodeSet) Command {
	return Command{Kind: CmdNotifySite, Active: active, Failed: failed}
}

// NotifyView delivers a membership change.
func NotifyView(active, failed can.NodeSet, left bool) Command {
	return Command{Kind: CmdNotifyView, Active: active, Failed: failed, Left: left}
}

// FDARequest asks for failure-sign diffusion.
func FDARequest(failed can.NodeID) Command { return Command{Kind: CmdFDARequest, Node: failed} }

// FDACancel retracts a local failure-sign request.
func FDACancel(failed can.NodeID) Command { return Command{Kind: CmdFDACancel, Node: failed} }

// FDAForget clears the FDA diffusion counters for a node that (re)entered
// the agreed membership view.
func FDAForget(node can.NodeID) Command { return Command{Kind: CmdFDAForget, Node: node} }

// FDANty delivers fda-can.nty.
func FDANty(failed can.NodeID) Command { return Command{Kind: CmdFDANty, Node: failed} }

// FDNty delivers fd-can.nty.
func FDNty(failed can.NodeID) Command { return Command{Kind: CmdFDNty, Node: failed} }

// FDStart begins surveillance of a node.
func FDStart(r can.NodeID) Command { return Command{Kind: CmdFDStart, Node: r} }

// FDStop ends surveillance of a node.
func FDStop(r can.NodeID) Command { return Command{Kind: CmdFDStop, Node: r} }

// RHARequest starts a reception history agreement.
func RHARequest() Command { return Command{Kind: CmdRHARequest} }

// RHAInit delivers rha-can.nty(INIT).
func RHAInit() Command { return Command{Kind: CmdRHAInit} }

// RHAEnd delivers rha-can.nty(END, rhv).
func RHAEnd(rhv can.NodeSet) Command { return Command{Kind: CmdRHAEnd, View: rhv} }
