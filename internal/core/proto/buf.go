package proto

// CommandBuf is a reusable command emission buffer. Cores append into one
// via StepInto instead of returning freshly allocated slices; callers Reset
// and reuse the same buffer across steps, so the steady-state loop settles
// into zero allocations once the buffer has grown to the high-water mark.
//
// The buffer also supports segment-based routing (core.Node): a caller
// records Len as a mark, lets a sub-core append, walks [mark, Len) by
// index, and Truncates back to the mark — all without aliasing problems as
// long as each Command is copied out by value before recursing.
type CommandBuf struct {
	cmds []Command
}

// Reset empties the buffer, retaining capacity.
func (b *CommandBuf) Reset() { b.cmds = b.cmds[:0] }

// Len reports the number of buffered commands.
func (b *CommandBuf) Len() int { return len(b.cmds) }

// Put appends a command.
func (b *CommandBuf) Put(c Command) { b.cmds = append(b.cmds, c) }

// At returns the i-th buffered command by value.
func (b *CommandBuf) At(i int) Command { return b.cmds[i] }

// Truncate shortens the buffer to n commands.
func (b *CommandBuf) Truncate(n int) { b.cmds = b.cmds[:n] }

// Commands exposes the buffered commands as a slice, nil when empty. The
// slice aliases the buffer: it is valid only until the next Reset/Put and
// must be copied for retention (replay recording does).
func (b *CommandBuf) Commands() []Command {
	if len(b.cmds) == 0 {
		return nil
	}
	return b.cmds
}
