package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"canely"
	"canely/internal/campaign"
	"canely/internal/can"
	"canely/internal/gossip"
	"canely/internal/sim"
)

// The gossip-vs-CANELy comparison asks the paper's scaling question: what
// does the wired-AND buy, and what does it cost? CANELy's failure
// detection rides the life-sign channel of a broadcast bus — detection
// latency is the crisp bound Tb + 2·Ttd and false positives are zero by
// construction, but every node hears every life-sign, so the bus budget
// forces Tb (and with it the latency) to grow linearly with the cluster.
// SWIM-style gossip over lossy point-to-point datagrams keeps per-node
// bandwidth and expected detection latency almost flat in N, but pays with
// probabilistic latency and a false-suspicion rate that never reaches
// zero on a lossy medium.
//
// Real cores cannot answer the question directly: can.MaxNodes caps a
// simulated network at 64 identities, and a 10,000-node frame-level
// simulation is out of reach regardless. The campaign therefore sweeps a
// seeded Monte-Carlo *round model* of the SWIM protocol (probe rounds,
// epidemic dissemination, loss-induced false suspicions — the same
// mechanics internal/gossip implements, abstracted to aggregate counts
// per protocol period) against the analytic CANELy model the paper's
// bandwidth analysis (Figure 10) uses, with the crash phase and all
// stochastic counts drawn per seed so every point carries a 95%
// confidence interval.

// GossipModel parameterizes the comparison at one cluster size.
type GossipModel struct {
	// Nodes is the cluster size (not bounded by can.MaxNodes: the model
	// works on aggregate counts, not identities).
	Nodes int
	// Gossip carries the SWIM tuning: Period, AckTimeout, SuspectTimeout
	// and Fanout are read; Retransmit doubles as the ping-req proxy count.
	Gossip gossip.Config
	// Loss is the per-message loss probability of the datagram medium.
	Loss float64
}

// gossipFrameBits is the on-wire cost of one gossip datagram: an extended
// frame with the full 8-byte payload (kind/seq byte, subject byte, three
// piggybacked updates), worst-case stuffing plus interframe space.
var gossipFrameBits = float64(can.WorstSlotBits(can.FormatExtended, 8))

// elsFrameBits is the on-wire cost of one CANELy life-sign slot.
var elsFrameBits = float64(can.WorstSlotBits(can.FormatExtended, 8))

// poisson draws a Poisson variate: Knuth's product method for small
// rates, a normal approximation beyond (where the distributions agree to
// well under the CI widths this campaign reports).
func poisson(r *sim.RNG, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 64 {
		u1 := r.Float64()
		if u1 < 1e-12 {
			u1 = 1e-12
		}
		z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*r.Float64())
		if k := int(math.Round(lambda + z*math.Sqrt(lambda))); k > 0 {
			return k
		}
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// detectMs simulates one crash detection: rounds until some survivor's
// uniform probe selects the victim (each round the number of such probes
// is Binomial(N-1, 1/(N-1)) ≈ Poisson(1)), then the ack timeout and the
// suspicion window, then epidemic dissemination of the confirmed failure
// until every survivor knows. The phases are summed sequentially — the
// conservative reading; in the implementation dissemination overlaps the
// suspicion window, so the model upper-bounds the protocol it abstracts.
func (m GossipModel) detectMs(r *sim.RNG) float64 {
	period := m.Gossip.Period
	n := m.Nodes
	round, detectors := 0, 0
	for detectors == 0 {
		round++
		detectors = poisson(r, 1)
		if round > 100000 {
			break
		}
	}
	// Epidemic spread: informed nodes each push the update to Fanout
	// uniform targets per period; a push is lost with probability Loss.
	informed, spread := detectors, 0
	for informed < n-1 {
		spread++
		contact := 1 - math.Pow(1-1/float64(n-1), float64(informed*m.Gossip.Fanout)*(1-m.Loss))
		grow := poisson(r, float64(n-1-informed)*contact)
		informed += grow
		if spread > 100000 {
			break
		}
	}
	d := time.Duration(round)*period + m.Gossip.AckTimeout +
		m.Gossip.SuspectTimeout + time.Duration(spread)*period
	return float64(d) / float64(time.Millisecond)
}

// falseSuspicion returns the probability that one probe of a live peer
// escalates to a suspicion: the direct ping/ack round trip fails (either
// leg lost) and every ping-req relay (four legs each) fails too.
func (m GossipModel) falseSuspicion() float64 {
	direct := 1 - math.Pow(1-m.Loss, 2)
	relay := 1 - math.Pow(1-m.Loss, 4)
	return direct * math.Pow(relay, float64(m.Gossip.Retransmit))
}

// gossipTrial runs one seeded trial of the SWIM model and returns the
// three comparison metrics.
func (m GossipModel) gossipTrial(r *sim.RNG) (detectMs, fpPerNodeHour, bwBitsPerSec float64) {
	detectMs = m.detectMs(r)

	probesPerNodeHour := float64(time.Hour) / float64(m.Gossip.Period)
	suspicions := poisson(r, float64(m.Nodes)*probesPerNodeHour*m.falseSuspicion())
	fpPerNodeHour = float64(suspicions) / float64(m.Nodes)

	// Steady-state traffic per node per period: one ping out, its ack in,
	// and the mirror image as a probe target (2 sent + 2 received), plus
	// ping-req fan-out (2·Retransmit messages at each of requester, relay
	// and subject — amortized 4·Retransmit per failed direct probe) for
	// the sampled share of direct probes the lossy medium eats.
	perPeriod := 4.0
	failed := poisson(r, probesPerNodeHour*(1-math.Pow(1-m.Loss, 2)))
	perPeriod += float64(failed) / probesPerNodeHour * 4 * float64(m.Gossip.Retransmit)
	bwBitsPerSec = perPeriod * gossipFrameBits / m.Gossip.Period.Seconds()
	return detectMs, fpPerNodeHour, bwBitsPerSec
}

// canelyTrial evaluates the CANELy side at the same cluster size. The
// life-sign period cannot stay at the configured Tb forever: N nodes each
// transmit one ELS slot per Tb on a shared bus, and the membership channel
// is budgeted at most half the raw bit rate (the paper's Figure 10
// headroom), so Tb stretches to 2·N·slot/rate once N outgrows the
// default. Detection is the residual of the victim's cycle (crash phase
// uniform in [0, Tb)) plus two transmission-delay bounds; false positives
// are zero — the wired-AND makes frame reception a bus-wide consensus, so
// a live node's life-sign is never missed by a subset.
func canelyTrial(r *sim.RNG, cfg canely.Config, nodes int) (detectMs, fpPerNodeHour, bwBitsPerSec float64) {
	tb := cfg.Tb
	if minTb := cfg.Rate.DurationOf(2 * nodes * int(elsFrameBits)); tb < minTb {
		tb = minTb
	}
	phase := r.Duration(tb)
	detectMs = float64(tb-phase+2*cfg.Ttd) / float64(time.Millisecond)
	// Every node hears every life-sign: per-node bandwidth is the whole
	// channel, N slots per Tb.
	bwBitsPerSec = float64(nodes) * elsFrameBits / tb.Seconds()
	return detectMs, 0, bwBitsPerSec
}

// GossipComparisonSpec builds the comparison campaign: at every cluster
// size and seed, one SWIM model trial and one CANELy model trial, reduced
// to paired metrics.
func GossipComparisonSpec(base canely.Config, model GossipModel, sizes []int, seeds campaign.SeedRange) *campaign.Spec {
	return &campaign.Spec{
		Name:  "gossip-comparison",
		Base:  base,
		Axes:  []campaign.Axis{campaign.IntAxis("nodes", sizes...)},
		Seeds: seeds,
		Run: func(p campaign.Params) (map[string]float64, error) {
			m := model
			m.Nodes = p.Values[0].(int)
			if m.Nodes < 2 {
				return nil, fmt.Errorf("cluster of %d nodes has nothing to detect", m.Nodes)
			}
			rng := sim.NewRNG(p.Seed).Split(fmt.Sprintf("gossip-cmp/n%d", m.Nodes))
			gd, gfp, gbw := m.gossipTrial(rng)
			cd, cfp, cbw := canelyTrial(rng, p.Config, m.Nodes)
			return map[string]float64{
				"gossip_detect_ms":  gd,
				"gossip_fp_node_hr": gfp,
				"gossip_bw_bps":     gbw,
				"canely_detect_ms":  cd,
				"canely_fp_node_hr": cfp,
				"canely_bw_bps":     cbw,
			}, nil
		},
	}
}

// GossipComparisonPoint is one cluster size of the sweep: means and 95%
// confidence half-widths for the three metrics, per protocol.
type GossipComparisonPoint struct {
	Nodes int

	GossipDetectMs, GossipDetectCI95Ms float64
	GossipFPPerNodeHour, GossipFPCI95  float64
	GossipBWBitsPerSec, GossipBWCI95   float64

	CANELyDetectMs, CANELyDetectCI95Ms float64
	CANELyFPPerNodeHour, CANELyFPCI95  float64
	CANELyBWBitsPerSec, CANELyBWCI95   float64
}

// DefaultGossipModel is the SWIM tuning the comparison sweeps: the
// internal/gossip defaults over a 1% lossy datagram medium.
func DefaultGossipModel() GossipModel {
	return GossipModel{
		Gossip: gossip.Config{
			Period:         20 * time.Millisecond,
			AckTimeout:     5 * time.Millisecond,
			SuspectTimeout: 120 * time.Millisecond,
			Fanout:         2,
			Retransmit:     3,
		},
		Loss: 0.01,
	}
}

// MeasureGossipComparison runs the comparison campaign and reduces it to
// per-cluster-size points.
func MeasureGossipComparison(sizes []int, trials int, seed int64) []GossipComparisonPoint {
	if len(sizes) == 0 {
		sizes = []int{10, 100, 1000, 10000}
	}
	if trials <= 0 {
		trials = 1
	}
	spec := GossipComparisonSpec(canely.DefaultConfig(), DefaultGossipModel(), sizes,
		campaign.SeedRange{Base: seed, N: trials})
	runner := campaign.Runner{}
	runs, err := runner.Run(context.Background(), spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: gossip comparison campaign: %v", err))
	}
	rep := campaign.Summarize(spec, runs)
	out := make([]GossipComparisonPoint, 0, len(sizes))
	for i, p := range rep.Points {
		pt := GossipComparisonPoint{Nodes: sizes[i]}
		for _, m := range p.Metrics {
			switch m.Name {
			case "gossip_detect_ms":
				pt.GossipDetectMs, pt.GossipDetectCI95Ms = m.Agg.Mean, m.Agg.CI95
			case "gossip_fp_node_hr":
				pt.GossipFPPerNodeHour, pt.GossipFPCI95 = m.Agg.Mean, m.Agg.CI95
			case "gossip_bw_bps":
				pt.GossipBWBitsPerSec, pt.GossipBWCI95 = m.Agg.Mean, m.Agg.CI95
			case "canely_detect_ms":
				pt.CANELyDetectMs, pt.CANELyDetectCI95Ms = m.Agg.Mean, m.Agg.CI95
			case "canely_fp_node_hr":
				pt.CANELyFPPerNodeHour, pt.CANELyFPCI95 = m.Agg.Mean, m.Agg.CI95
			case "canely_bw_bps":
				pt.CANELyBWBitsPerSec, pt.CANELyBWCI95 = m.Agg.Mean, m.Agg.CI95
			}
		}
		out = append(out, pt)
	}
	return out
}

// FormatGossipComparison renders the sweep as a side-by-side table.
func FormatGossipComparison(points []GossipComparisonPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s | %12s %12s %12s | %12s %12s %12s\n",
		"nodes",
		"canely ms", "fp/node/hr", "bw kbps",
		"gossip ms", "fp/node/hr", "bw kbps")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-8d | %5.1f ±%5.1f %12.2f %6.1f ±%3.1f | %5.1f ±%5.1f %12.2f %6.1f ±%3.1f\n",
			p.Nodes,
			p.CANELyDetectMs, p.CANELyDetectCI95Ms, p.CANELyFPPerNodeHour, p.CANELyBWBitsPerSec/1000, p.CANELyBWCI95/1000,
			p.GossipDetectMs, p.GossipDetectCI95Ms, p.GossipFPPerNodeHour, p.GossipBWBitsPerSec/1000, p.GossipBWCI95/1000)
	}
	return sb.String()
}
