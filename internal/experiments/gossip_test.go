package experiments

import (
	"math"
	"testing"

	"canely/internal/sim"
)

// TestGossipComparisonShape pins the comparison campaign's structure and
// the qualitative claims the model exists to show: CANELy's detection
// latency and per-node bandwidth grow with the cluster once the bus
// budget forces Tb up, gossip's stay near-flat, CANELy makes zero false
// suspicions and lossy gossip makes some.
func TestGossipComparisonShape(t *testing.T) {
	sizes := []int{10, 100, 1000, 10000}
	pts := MeasureGossipComparison(sizes, 20, 1)
	if len(pts) != len(sizes) {
		t.Fatalf("got %d points, want %d", len(pts), len(sizes))
	}
	for i, p := range pts {
		if p.Nodes != sizes[i] {
			t.Fatalf("point %d is for %d nodes, want %d", i, p.Nodes, sizes[i])
		}
		for name, v := range map[string]float64{
			"gossip detect":  p.GossipDetectMs,
			"gossip bw":      p.GossipBWBitsPerSec,
			"canely detect":  p.CANELyDetectMs,
			"canely bw":      p.CANELyBWBitsPerSec,
			"gossip detect±": p.GossipDetectCI95Ms,
			"canely detect±": p.CANELyDetectCI95Ms,
		} {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%d nodes: %s = %v, want positive finite", p.Nodes, name, v)
			}
		}
		if p.CANELyFPPerNodeHour != 0 {
			t.Errorf("%d nodes: CANELy false positives %v, want 0", p.Nodes, p.CANELyFPPerNodeHour)
		}
		if p.GossipFPPerNodeHour <= 0 {
			t.Errorf("%d nodes: lossy gossip reports no false suspicions", p.Nodes)
		}
	}
	small, large := pts[0], pts[len(pts)-1]
	if large.CANELyDetectMs < 10*small.CANELyDetectMs {
		t.Errorf("CANELy detection did not scale with N: %d nodes %.1fms, %d nodes %.1fms",
			small.Nodes, small.CANELyDetectMs, large.Nodes, large.CANELyDetectMs)
	}
	if large.GossipDetectMs > 5*small.GossipDetectMs {
		t.Errorf("gossip detection not near-flat: %d nodes %.1fms, %d nodes %.1fms",
			small.Nodes, small.GossipDetectMs, large.Nodes, large.GossipDetectMs)
	}
	// CANELy per-node bandwidth grows with N until it saturates at the
	// membership channel budget (half the 1 Mbit/s bus); gossip's stays put.
	if large.CANELyBWBitsPerSec < 2*small.CANELyBWBitsPerSec {
		t.Errorf("CANELy per-node bandwidth did not grow: %.0f vs %.0f bps",
			small.CANELyBWBitsPerSec, large.CANELyBWBitsPerSec)
	}
	if large.CANELyBWBitsPerSec > 500_000+1 {
		t.Errorf("CANELy per-node bandwidth %0.f bps exceeds the channel budget", large.CANELyBWBitsPerSec)
	}
	if large.GossipBWBitsPerSec > 2*small.GossipBWBitsPerSec {
		t.Errorf("gossip per-node bandwidth not flat: %.0f vs %.0f bps",
			small.GossipBWBitsPerSec, large.GossipBWBitsPerSec)
	}

	table := FormatGossipComparison(pts)
	if len(table) == 0 {
		t.Fatal("empty table")
	}
	t.Logf("\n%s", table)
}

// TestGossipComparisonDeterminism: the campaign contract — same sizes and
// seeds, byte-identical aggregates regardless of scheduling.
func TestGossipComparisonDeterminism(t *testing.T) {
	a := MeasureGossipComparison([]int{10, 1000}, 10, 7)
	b := MeasureGossipComparison([]int{10, 1000}, 10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

// TestPoissonMoments sanity-checks the sampler both sides of the
// normal-approximation switch: the empirical mean must sit within a few
// standard errors of lambda.
func TestPoissonMoments(t *testing.T) {
	r := sim.NewRNG(3).Split("poisson")
	for _, lambda := range []float64{0.5, 8, 200} {
		const n = 4000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += float64(poisson(r, lambda))
		}
		mean := sum / n
		if se := 4 * math.Sqrt(lambda/n); math.Abs(mean-lambda) > se {
			t.Errorf("lambda %v: mean %v off by more than %v", lambda, mean, se)
		}
	}
	if poisson(r, 0) != 0 || poisson(r, -1) != 0 {
		t.Error("nonpositive lambda must draw 0")
	}
}
