package experiments

import (
	"fmt"
	"strings"
	"time"

	"canely"
	"canely/internal/can"
)

// ChurnPoint is one cell of the churn sweep: membership-suite utilization
// at a given number of simultaneous join requests.
type ChurnPoint struct {
	C           int
	Utilization float64
}

// MeasureChurnSweep measures the membership-protocol bandwidth as the
// number of simultaneous join requests grows — the measured counterpart of
// the paper's footnote 11 ("each join/leave request contributes an
// increase of ≈0.16% to the overall utilization").
func MeasureChurnSweep(cs []int, tm time.Duration, seed int64) []ChurnPoint {
	if len(cs) == 0 {
		cs = []int{0, 1, 5, 10, 20}
	}
	const members = 32
	var out []ChurnPoint
	for _, c := range cs {
		if members+c > can.MaxNodes {
			panic(fmt.Sprintf("experiments: churn %d exceeds the node space", c))
		}
		cfg := canely.DefaultConfig()
		cfg.Seed = seed
		cfg.Tm = tm
		cfg.Tb = tm
		cfg.TjoinWait = 3 * tm
		net := canely.NewNetwork(cfg, members)
		for i := 0; i < c; i++ {
			net.AddNode(canely.NodeID(members + i))
		}
		var view canely.NodeSet
		for i := 0; i < members; i++ {
			view = view.Add(canely.NodeID(i))
		}
		for i := 0; i < members; i++ {
			net.Node(canely.NodeID(i)).Bootstrap(view)
		}
		net.Run(2 * tm)
		before := net.Stats()
		for i := 0; i < c; i++ {
			net.Node(canely.NodeID(members + i)).Join()
		}
		net.Run(2 * tm)
		window := net.Stats().Sub(before)
		bits := protocolBits(window)
		out = append(out, ChurnPoint{
			C:           c,
			Utilization: float64(bits) / float64(cfg.Rate.Bits(2*tm)),
		})
	}
	return out
}

// PerRequestDelta estimates the marginal utilization of one join request
// from the sweep's endpoints.
func PerRequestDelta(points []ChurnPoint) float64 {
	if len(points) < 2 {
		return 0
	}
	first, last := points[0], points[len(points)-1]
	if last.C == first.C {
		return 0
	}
	return (last.Utilization - first.Utilization) / float64(last.C-first.C)
}

// FormatChurn renders the sweep.
func FormatChurn(points []ChurnPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %12s\n", "c", "protocol util")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-6d %11.2f%%\n", p.C, 100*p.Utilization)
	}
	fmt.Fprintf(&sb, "per-request delta: %.3f%%\n", 100*PerRequestDelta(points))
	return sb.String()
}
