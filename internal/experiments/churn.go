package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"canely"
	"canely/internal/campaign"
	"canely/internal/can"
)

// ChurnPoint is one cell of the churn sweep: membership-suite utilization
// at a given number of simultaneous join requests, averaged over the seed
// sweep.
type ChurnPoint struct {
	C           int
	Utilization float64
	// CI95 is the half-width of the 95% confidence interval of the mean
	// utilization across the seeded trials.
	CI95 float64
}

// MeasureChurnSweep measures the membership-protocol bandwidth as the
// number of simultaneous join requests grows — the measured counterpart of
// the paper's footnote 11 ("each join/leave request contributes an
// increase of ≈0.16% to the overall utilization"). The churn counts form a
// campaign axis and every point is averaged over trials parallel seeded
// runs.
func MeasureChurnSweep(sub canely.Substrate, cs []int, tm time.Duration, trials int, seed int64) []ChurnPoint {
	if len(cs) == 0 {
		cs = []int{0, 1, 5, 10, 20}
	}
	if trials <= 0 {
		trials = 1
	}
	const members = 32
	base := canely.DefaultConfig()
	base.Substrate = sub
	base.Tm = tm
	base.Tb = tm
	base.TjoinWait = 3 * tm
	spec := &campaign.Spec{
		Name:  "churn-sweep",
		Base:  base,
		Axes:  []campaign.Axis{campaign.IntAxis("c", cs...)},
		Seeds: campaign.SeedRange{Base: seed, N: trials},
		Run: func(p campaign.Params) (map[string]float64, error) {
			c := p.Values[0].(int)
			if members+c > can.MaxNodes {
				return nil, fmt.Errorf("churn %d exceeds the node space", c)
			}
			cfg := p.Config
			net := canely.NewNetwork(cfg, members)
			for i := 0; i < c; i++ {
				net.AddNode(canely.NodeID(members + i))
			}
			var view canely.NodeSet
			for i := 0; i < members; i++ {
				view = view.Add(canely.NodeID(i))
			}
			for i := 0; i < members; i++ {
				net.Node(canely.NodeID(i)).Bootstrap(view)
			}
			net.Run(2 * tm)
			before := net.Stats()
			for i := 0; i < c; i++ {
				net.Node(canely.NodeID(members + i)).Join()
			}
			net.Run(2 * tm)
			window := net.Stats().Sub(before)
			bits := protocolBits(window)
			return map[string]float64{
				"util": float64(bits) / float64(cfg.Rate.Bits(2*tm)),
			}, nil
		},
	}
	runner := campaign.Runner{}
	runs, err := runner.Run(context.Background(), spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: churn campaign: %v", err))
	}
	rep := campaign.Summarize(spec, runs)
	out := make([]ChurnPoint, 0, len(cs))
	for i, p := range rep.Points {
		pt := ChurnPoint{C: cs[i]}
		for _, m := range p.Metrics {
			if m.Name == "util" {
				pt.Utilization = m.Agg.Mean
				pt.CI95 = m.Agg.CI95
			}
		}
		out = append(out, pt)
	}
	return out
}

// PerRequestDelta estimates the marginal utilization of one join request
// from the sweep's endpoints.
func PerRequestDelta(points []ChurnPoint) float64 {
	if len(points) < 2 {
		return 0
	}
	first, last := points[0], points[len(points)-1]
	if last.C == first.C {
		return 0
	}
	return (last.Utilization - first.Utilization) / float64(last.C-first.C)
}

// FormatChurn renders the sweep.
func FormatChurn(points []ChurnPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %12s %12s\n", "c", "protocol util", "±95% CI")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-6d %11.2f%% %11.3f%%\n", p.C, 100*p.Utilization, 100*p.CI95)
	}
	fmt.Fprintf(&sb, "per-request delta: %.3f%%\n", 100*PerRequestDelta(points))
	return sb.String()
}
