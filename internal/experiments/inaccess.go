package experiments

import (
	"time"

	"canely/internal/analysis"
	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/fault"
	"canely/internal/sim"
)

// InaccessibilityResult pairs the measured worst-case inaccessibility from
// a scripted error burst with the analytical bound of Figure 11.
type InaccessibilityResult struct {
	// Burst is the number of back-to-back corrupted attempts injected.
	Burst int
	// Measured is the bus-accounted inaccessibility (wasted frames plus
	// error signalling).
	Measured time.Duration
	// Bound is the analytical worst case for the same burst length.
	Bound time.Duration
}

// MeasureInaccessibility injects a burst of consecutive corruptions of a
// maximum-length data frame and reports the inaccessibility the bus
// accumulated — the measured counterpart of the [22] scenario enumeration
// behind Figure 11's bounds.
func MeasureInaccessibility(burst int) InaccessibilityResult {
	rules := make([]fault.Rule, 0, burst)
	for i := 0; i < burst; i++ {
		rules = append(rules, fault.Rule{
			Match:    fault.NewMatch(can.TypeData),
			Decision: fault.Decision{Corrupt: true},
		})
	}
	script := fault.NewScript(rules...)

	sched := sim.NewScheduler()
	b := bus.New(sched, bus.Config{Injector: script})
	tx := canlayer.New(b.Attach(0))
	canlayer.New(b.Attach(1))
	// A maximum-length frame: 8 data bytes, worst-case stuffing.
	payload := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF}
	_ = tx.DataReq(can.DataSign(0, 0, 1), payload)
	sched.Run()

	p := analysis.InaccessibilityParams{
		Format:    can.FormatExtended,
		DataBytes: 8,
		Retries:   burst,
	}
	_, hiBits := p.Bounds()
	return InaccessibilityResult{
		Burst:    burst,
		Measured: b.Stats().Inaccessibility,
		Bound:    can.Rate1Mbps.DurationOf(hiBits),
	}
}
