package experiments

import (
	"fmt"
	"time"

	"canely"
	"canely/internal/campaign"
)

// This file hosts the campaign extractors: the per-run measurement
// functions the internal/campaign engine fans out across workers. Every
// extractor builds its whole simulated world from its Params, so runs are
// independent and campaigns are deterministic regardless of parallelism.

// CrashTrial runs one seeded crash-detection trial on an n-node CANELy
// network: bootstrap, warm up for 50ms plus the given phase offset (so
// trials hit different points of the membership cycle), crash the victim
// and let the highest node observe. It returns the failure-detector QoS
// sample: detection latency, mistaken suspicions, and view-agreement
// violations among the surviving members.
func CrashTrial(cfg canely.Config, n int, victim canely.NodeID, phase time.Duration) campaign.QoS {
	if n < 2 {
		panic("experiments: CrashTrial needs at least two nodes")
	}
	net := canely.NewNetwork(cfg, n)
	net.BootstrapAll()
	net.Run(50*time.Millisecond + phase)

	observer := net.Node(canely.NodeID(n - 1))
	var q campaign.QoS
	crashed := canely.MakeSet()
	var detectedAt time.Duration
	observer.OnChange(func(ch canely.Change) {
		for _, id := range ch.Failed.IDs() {
			if !crashed.Contains(id) {
				q.Mistakes++
			}
		}
		if detectedAt == 0 && ch.Failed.Contains(victim) {
			detectedAt = net.Now()
		}
	})
	crashAt := net.Now()
	net.Node(victim).Crash()
	crashed = crashed.Add(victim)
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)

	if detectedAt > 0 {
		q.Detected = true
		q.DetectedAt = detectedAt
		q.DetectionTime = detectedAt - crashAt
	}
	ref := observer.View()
	for _, nd := range net.Nodes() {
		if nd.ID() != observer.ID() && nd.Alive() && nd.Member() && nd.View() != ref {
			q.AgreementViolations++
		}
	}
	return q
}

// CrashQoSSpec builds the canonical failure-detector QoS campaign: at every
// grid point and seed, one crash is injected into an n-node network and the
// QoS metrics (detection_ms, mistakes, agreement_violations, detected) are
// extracted. An undetected crash is a failed trial. cmd/campaign runs this
// spec; MeasureCANELyLatency builds on the same trial body.
func CrashQoSSpec(base canely.Config, n int, axes []campaign.Axis, seeds campaign.SeedRange) *campaign.Spec {
	return &campaign.Spec{
		Name:  "crash-detection-qos",
		Base:  base,
		Axes:  axes,
		Seeds: seeds,
		Run: func(p campaign.Params) (map[string]float64, error) {
			victim := canely.NodeID(p.Trial % (n - 1))
			phase := time.Duration(p.Trial%17) * 3 * time.Millisecond
			q := CrashTrial(p.Config, n, victim, phase)
			if !q.Detected {
				return nil, fmt.Errorf("crash of node %d never detected", victim)
			}
			return q.Metrics(), nil
		},
	}
}
