package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"canely"
	"canely/internal/campaign"
	"canely/internal/can"
)

// FederationQoS is the measurement of one federation trial: how long a
// cold-booted site took to converge through digest exchange, and how long
// the survivors took to expel a crashed segment.
type FederationQoS struct {
	// Converged reports whether every gateway assembled the full site.
	Converged bool
	// ConvergeTime is the instant (from bootstrap) the last gateway
	// converged.
	ConvergeTime time.Duration
	// Detected reports whether every surviving gateway removed the victim.
	Detected bool
	// DetectionTime is the worst-case removal latency across survivors,
	// measured from the crash instant.
	DetectionTime time.Duration
	// Mistakes counts segment removals observed before the crash — a
	// correct federation makes none.
	Mistakes int
}

// FederationTrial runs one seeded federation trial: segments × nodesPer
// cold-boot (every gateway knowing only its own segment), converge to the
// full site through digest exchange, then the victim segment crashes
// whole and the survivors detect it by digest staleness. phase offsets the
// crash instant against the announcement cycle so trials sample different
// alignments.
func FederationTrial(cfg canely.Config, segments, nodesPer, victim int, phase time.Duration) FederationQoS {
	fcfg := canely.FederationConfig{
		Node:            cfg,
		Segments:        segments,
		NodesPerSegment: nodesPer,
		Tann:            10 * time.Millisecond,
		Tstale:          40 * time.Millisecond,
	}
	fed := canely.NewFederation(fcfg)
	site := fed.Site()
	gws := fed.Gateways()

	const unseen = time.Duration(-1)
	var q FederationQoS
	convergedAt := make([]time.Duration, len(gws))
	removedAt := make([]time.Duration, len(gws))
	crashAt := unseen
	for i, g := range gws {
		i := i
		convergedAt[i], removedAt[i] = unseen, unseen
		g.OnSiteChange(func(active, failed canely.NodeSet) {
			if convergedAt[i] == unseen && active == site {
				convergedAt[i] = fed.Now()
			}
			if failed != 0 && crashAt == unseen {
				q.Mistakes++
			}
			if removedAt[i] == unseen && failed.Contains(can.NodeID(victim)) {
				removedAt[i] = fed.Now()
			}
		})
	}

	fed.BootstrapCold()
	// Digest fan-in is one frame per segment per Tann; 20 cycles bounds
	// convergence even at 32 segments with generous slack.
	fed.Run(20*fcfg.Tann + phase)
	q.Converged = true
	for i := range gws {
		if convergedAt[i] == unseen {
			q.Converged = false
		} else if convergedAt[i] > q.ConvergeTime {
			q.ConvergeTime = convergedAt[i]
		}
	}
	if !q.Converged {
		return q
	}

	crashAt = fed.Now()
	fed.CrashSegment(victim)
	fed.Run(fcfg.Tstale + 6*fcfg.Tann)
	q.Detected = true
	for i, g := range gws {
		if !g.Alive() {
			continue // the victim's own gateway does not witness
		}
		if removedAt[i] == unseen {
			q.Detected = false
		} else if d := removedAt[i] - crashAt; d > q.DetectionTime {
			q.DetectionTime = d
		}
	}
	return q
}

// FederationSpec builds the federation scaling campaign: at every segment
// count and seed, a federation cold-boots, converges, loses one segment and
// detects the loss. Metrics: converge_ms, detect_ms, mistakes. A federation
// that fails to converge or detect is a failed trial.
func FederationSpec(base canely.Config, segCounts []int, nodesPer int, seeds campaign.SeedRange) *campaign.Spec {
	return &campaign.Spec{
		Name:  "federation-convergence",
		Base:  base,
		Axes:  []campaign.Axis{campaign.IntAxis("segments", segCounts...)},
		Seeds: seeds,
		Run: func(p campaign.Params) (map[string]float64, error) {
			segments := p.Values[0].(int)
			victim := p.Trial % segments
			phase := time.Duration(p.Trial%13) * time.Millisecond
			q := FederationTrial(p.Config, segments, nodesPer, victim, phase)
			if !q.Converged {
				return nil, fmt.Errorf("%d-segment site never converged", segments)
			}
			if !q.Detected {
				return nil, fmt.Errorf("crash of segment %d never detected", victim)
			}
			return map[string]float64{
				"converge_ms": float64(q.ConvergeTime) / float64(time.Millisecond),
				"detect_ms":   float64(q.DetectionTime) / float64(time.Millisecond),
				"mistakes":    float64(q.Mistakes),
			}, nil
		},
	}
}

// FederationPoint is one cell of the federation scaling sweep.
type FederationPoint struct {
	Segments int
	// ConvergeMs/DetectMs are means over the seed sweep; the CI95 fields
	// are the 95% confidence half-widths.
	ConvergeMs, ConvergeCI95Ms float64
	DetectMs, DetectCI95Ms     float64
}

// MeasureFederationSweep runs the federation scaling campaign and reduces
// it to per-segment-count points.
func MeasureFederationSweep(sub canely.Substrate, segCounts []int, nodesPer, trials int, seed int64) []FederationPoint {
	if len(segCounts) == 0 {
		segCounts = []int{4, 8, 16, 32}
	}
	if nodesPer <= 0 {
		nodesPer = 4
	}
	if trials <= 0 {
		trials = 1
	}
	base := canely.DefaultConfig()
	base.Substrate = sub
	spec := FederationSpec(base, segCounts, nodesPer, campaign.SeedRange{Base: seed, N: trials})
	runner := campaign.Runner{}
	runs, err := runner.Run(context.Background(), spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: federation campaign: %v", err))
	}
	rep := campaign.Summarize(spec, runs)
	out := make([]FederationPoint, 0, len(segCounts))
	for i, p := range rep.Points {
		pt := FederationPoint{Segments: segCounts[i]}
		for _, m := range p.Metrics {
			switch m.Name {
			case "converge_ms":
				pt.ConvergeMs, pt.ConvergeCI95Ms = m.Agg.Mean, m.Agg.CI95
			case "detect_ms":
				pt.DetectMs, pt.DetectCI95Ms = m.Agg.Mean, m.Agg.CI95
			}
		}
		out = append(out, pt)
	}
	return out
}

// FormatFederation renders the sweep.
func FormatFederation(points []FederationPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %10s %12s %10s\n",
		"segments", "converge ms", "±95% CI", "detect ms", "±95% CI")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-10d %12.2f %10.3f %12.2f %10.3f\n",
			p.Segments, p.ConvergeMs, p.ConvergeCI95Ms, p.DetectMs, p.DetectCI95Ms)
	}
	return sb.String()
}
