package experiments

import "testing"

// BenchmarkGossipComparison times one full CANELy-vs-SWIM comparison
// campaign (4 cluster sizes × 50 seeds, the exact sweep `campaign -bench`
// embeds in BENCH_campaign.json): the cost of regenerating the scaling
// section of the bench artifact.
func BenchmarkGossipComparison(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pts := MeasureGossipComparison([]int{10, 100, 1000, 10000}, 50, 1)
		if len(pts) != 4 {
			b.Fatalf("got %d points", len(pts))
		}
	}
}
