package experiments

import (
	"strings"
	"testing"
	"time"

	"canely"
	"canely/internal/analysis"
)

func TestMeasuredFigure10ShapeMatchesAnalysis(t *testing.T) {
	cfg := DefaultFigure10Config()
	// Two x-axis points keep the test fast; the full sweep runs in the
	// benchmark harness.
	points := MeasureFigure10(cfg, []time.Duration{30 * time.Millisecond, 90 * time.Millisecond})
	if len(points) != 8 {
		t.Fatalf("points = %d, want 8 (2 Tm x 4 series)", len(points))
	}
	byKey := map[[2]int]Figure10Point{}
	for _, p := range points {
		tmMs := int(p.Tm / time.Millisecond)
		byKey[[2]int{tmMs, int(p.Series)}] = p
		if p.Measured <= 0 {
			t.Fatalf("measured utilization is zero for %v/%v", p.Tm, p.Series)
		}
		// The analysis is a deliberate worst case: measurements must stay
		// at or below it (allowing a little slack for the ELS alignment).
		if p.Measured > p.Analytical*1.25 {
			t.Fatalf("measured %.4f far above analytical %.4f for %v/%v",
				p.Measured, p.Analytical, p.Tm, p.Series)
		}
	}
	// Curve ordering holds in the measurements at Tm=30ms.
	for s := 0; s < 3; s++ {
		lo := byKey[[2]int{30, s}].Measured
		hi := byKey[[2]int{30, s + 1}].Measured
		if lo >= hi {
			t.Fatalf("measured ordering violated: series %d (%.4f) >= series %d (%.4f)",
				s, lo, s+1, hi)
		}
	}
	// 1/Tm decay: each series shrinks from 30ms to 90ms.
	for s := 0; s < 4; s++ {
		if byKey[[2]int{90, s}].Measured >= byKey[[2]int{30, s}].Measured {
			t.Fatalf("series %d does not decay with Tm", s)
		}
	}
}

func TestFormatFigure10(t *testing.T) {
	points := []Figure10Point{{Tm: 30 * time.Millisecond, Series: analysis.SeriesNoChanges,
		Analytical: 0.015, Measured: 0.012}}
	out := FormatFigure10(points)
	if !strings.Contains(out, "no msh. changes") || !strings.Contains(out, "1.50%") {
		t.Fatalf("format = %q", out)
	}
}

func TestLatencyComparisonReproducesSection66(t *testing.T) {
	cfg := DefaultLatencyConfig()
	cfg.Trials = 5
	results := MeasureAllLatencies(cfg)
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	byScheme := map[string]LatencyResult{}
	for _, r := range results {
		byScheme[r.Scheme] = r
		if r.Measured.N() != cfg.Trials {
			t.Fatalf("%s measured %d trials, want %d", r.Scheme, r.Measured.N(), cfg.Trials)
		}
		if r.Measured.Max() > r.Bound {
			t.Fatalf("%s max %v exceeds model bound %v", r.Scheme, r.Measured.Max(), r.Bound)
		}
	}
	ely := byScheme["CANELy"].Measured
	osek := byScheme["OSEK NM"].Measured
	nmt := byScheme["CANopen guarding"].Measured
	// The paper's headline: CANELy detects in tens of ms, OSEK in the
	// order of a second — a 10x+ gap; guarding sits between.
	if ely.Max() > 50*time.Millisecond {
		t.Fatalf("CANELy max latency %v, want tens of ms", ely.Max())
	}
	if osek.Mean() < 100*time.Millisecond {
		t.Fatalf("OSEK mean latency %v implausibly low", osek.Mean())
	}
	if osek.Mean() < 10*ely.Mean() {
		t.Fatalf("CANELy/OSEK gap too small: %v vs %v", ely.Mean(), osek.Mean())
	}
	if nmt.Mean() <= ely.Mean() || nmt.Mean() >= osek.Max() {
		t.Fatalf("CANopen %v should sit between CANELy %v and OSEK %v",
			nmt.Mean(), ely.Mean(), osek.Max())
	}
	if !strings.Contains(FormatLatencies(results), "OSEK NM") {
		t.Fatal("format incomplete")
	}
	// TTP's one-round detection with 1 ms slots sits in CANELy's class.
	ttp := byScheme["TTP (TDMA model)"].Measured
	if ttp.Max() > 20*time.Millisecond {
		t.Fatalf("TTP latency %v, want about one TDMA round", ttp.Max())
	}
}

func TestMembershipLatencyTensOfMs(t *testing.T) {
	lat := MeasureMembershipLatency(5, 3)
	if lat.N() != 5 {
		t.Fatalf("trials = %d", lat.N())
	}
	if lat.Max() > 50*time.Millisecond || lat.Min() <= 0 {
		t.Fatalf("membership latency %v..%v outside the 'tens of ms' envelope",
			lat.Min(), lat.Max())
	}
}

func TestMeasuredInaccessibilityWithinAnalyticalBound(t *testing.T) {
	for _, burst := range []int{1, 12, 16} {
		r := MeasureInaccessibility(burst)
		if r.Measured > r.Bound {
			t.Fatalf("burst %d: measured %v exceeds bound %v", burst, r.Measured, r.Bound)
		}
		// The bound is tight: the measurement must reach at least 90% of
		// it (the analytical cycle charges the interframe space, the bus
		// accounts it as normal spacing).
		if float64(r.Measured) < 0.9*float64(r.Bound) {
			t.Fatalf("burst %d: measured %v implausibly far below bound %v", burst, r.Measured, r.Bound)
		}
	}
	// Sixteen-attempt burst reproduces the CAN worst case of Figure 11.
	r := MeasureInaccessibility(16)
	if r.Bound != 2880*time.Microsecond {
		t.Fatalf("bound = %v, want 2.88ms", r.Bound)
	}
}

func TestChurnSweepMonotoneAndCalibrated(t *testing.T) {
	// The fast substrate accounts frame bits identically to the bit-accurate
	// one (see TestSubstrateEquivalence), so the calibration holds on both;
	// running the sweep on fastbus keeps the test cheap and the fast path hot.
	points := MeasureChurnSweep(canely.SubstrateFast, []int{0, 5, 10, 20}, 50*time.Millisecond, 2, 1)
	for i := 1; i < len(points); i++ {
		if points[i].Utilization <= points[i-1].Utilization {
			t.Fatalf("utilization not monotone in churn: %+v", points)
		}
	}
	// Footnote 11 analogue at Tm=50ms, extended frames and RHA cost
	// included: the marginal request cost must be a small fraction of a
	// percent, within a factor of a few of the paper's 0.16%-at-30ms.
	delta := PerRequestDelta(points)
	if delta <= 0 || delta > 0.005 {
		t.Fatalf("per-request delta = %.5f, out of envelope", delta)
	}
	if !strings.Contains(FormatChurn(points), "per-request delta") {
		t.Fatal("format incomplete")
	}
}

func TestFederationSweepScalesWithSegments(t *testing.T) {
	points := MeasureFederationSweep(canely.SubstrateFast, []int{4, 8, 16}, 3, 3, 1)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, p := range points {
		// Detection is staleness-driven: around Tstale (40ms), never an
		// order of magnitude away, and independent of segment count.
		if p.DetectMs < 30 || p.DetectMs > 80 {
			t.Fatalf("%d segments: detection %0.2fms outside the Tstale envelope", p.Segments, p.DetectMs)
		}
		// Convergence is digest fan-in on a shared backbone: it grows with
		// the segment count but stays well inside one announcement cycle
		// per round.
		if p.ConvergeMs <= 0 || p.ConvergeMs > 100 {
			t.Fatalf("%d segments: convergence %0.2fms out of envelope", p.Segments, p.ConvergeMs)
		}
		if i > 0 && p.ConvergeMs <= points[i-1].ConvergeMs {
			t.Fatalf("convergence not monotone in segments: %+v", points)
		}
	}
	if !strings.Contains(FormatFederation(points), "converge ms") {
		t.Fatal("format incomplete")
	}
}

func TestLatencyBandwidthTradeoff(t *testing.T) {
	points := MeasureLatencyBandwidthTradeoff(canely.SubstrateBitAccurate, nil, 6, 4, 1)
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		// Larger Tb: worse (or equal) worst-case latency, cheaper life-signs.
		if points[i].Bound <= points[i-1].Bound {
			t.Fatal("latency bound must grow with Tb")
		}
		if points[i].ELSUtilization >= points[i-1].ELSUtilization {
			t.Fatalf("life-sign bandwidth must shrink with Tb: %+v", points)
		}
	}
	for _, p := range points {
		if p.MaxLatency > p.Bound {
			t.Fatalf("Tb=%v: measured max %v exceeds bound %v", p.Tb, p.MaxLatency, p.Bound)
		}
	}
	if !strings.Contains(FormatTradeoff(points), "ELS util") {
		t.Fatal("format incomplete")
	}
}
