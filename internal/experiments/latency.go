package experiments

import (
	"fmt"
	"strings"
	"time"

	"canely"
	"canely/internal/analysis"
	"canely/internal/baselines"
	"canely/internal/bus"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
	"canely/internal/trace"
)

// LatencyResult summarizes one scheme's measured detection latencies.
type LatencyResult struct {
	Scheme   string
	Measured trace.Latencies
	Bound    time.Duration
}

// LatencyConfig parameterizes the §6.6 related-work comparison (experiment
// E4): the same crash, detected by CANELy, by the OSEK NM logical ring and
// by CANopen node guarding, over several trials.
type LatencyConfig struct {
	N      int
	Trials int
	Seed   int64
	CANELy canely.Config
	OSEK   baselines.OSEKConfig
	NMT    baselines.CANopenConfig
}

// DefaultLatencyConfig returns the reference comparison point.
func DefaultLatencyConfig() LatencyConfig {
	return LatencyConfig{
		N:      8,
		Trials: 10,
		Seed:   1,
		CANELy: canely.DefaultConfig(),
		OSEK:   baselines.DefaultOSEKConfig(),
		NMT:    baselines.DefaultCANopenConfig(),
	}
}

// MeasureCANELyLatency measures crash-to-notification latency of the
// CANELy failure detection + membership suite.
func MeasureCANELyLatency(c LatencyConfig) LatencyResult {
	res := LatencyResult{Scheme: "CANELy", Bound: c.CANELy.DetectionLatencyBound()}
	for trial := 0; trial < c.Trials; trial++ {
		cfg := c.CANELy
		cfg.Seed = c.Seed + int64(trial)
		net := canely.NewNetwork(cfg, c.N)
		net.BootstrapAll()
		net.Run(50*time.Millisecond + time.Duration(trial)*3*time.Millisecond)

		victim := canely.NodeID(trial % (c.N - 1))
		observer := net.Node(canely.NodeID(c.N - 1))
		var detected time.Duration
		observer.OnChange(func(ch canely.Change) {
			if detected == 0 && ch.Failed.Contains(victim) {
				detected = net.Now()
			}
		})
		crashAt := net.Now()
		net.Node(victim).Crash()
		net.Run(cfg.DetectionLatencyBound() + cfg.Tm)
		if detected == 0 {
			panic(fmt.Sprintf("experiments: CANELy trial %d never detected the crash", trial))
		}
		res.Measured.Add(sim.Time(detected), detected-crashAt, "canely")
	}
	return res
}

// MeasureOSEKLatency measures the same crash under the OSEK NM ring.
func MeasureOSEKLatency(c LatencyConfig) LatencyResult {
	model := analysis.RelatedWorkModel{N: c.N, OSEKTTyp: c.OSEK.TTyp, OSEKTMax: c.OSEK.TMax}
	res := LatencyResult{Scheme: "OSEK NM", Bound: model.OSEKLatency()}
	for trial := 0; trial < c.Trials; trial++ {
		sched := sim.NewScheduler()
		b := bus.New(sched, bus.Config{})
		var ring can.NodeSet
		for i := 0; i < c.N; i++ {
			ring = ring.Add(can.NodeID(i))
		}
		ports := make([]*bus.Port, c.N)
		nodes := make([]*baselines.OSEKNode, c.N)
		var detected sim.Time
		var crashAt sim.Time
		victim := can.NodeID(1 + trial%(c.N-1))
		for i := 0; i < c.N; i++ {
			ports[i] = b.Attach(can.NodeID(i))
			n, err := baselines.NewOSEKNode(sched, canlayer.New(ports[i]), ring, c.OSEK)
			if err != nil {
				panic(err)
			}
			n.OnAbsent(func(gone can.NodeID) {
				if gone == victim && detected == 0 {
					detected = sched.Now()
				}
			})
			nodes[i] = n
		}
		for _, n := range nodes {
			n.Start()
		}
		sched.RunUntil(sim.Time(50*time.Millisecond + time.Duration(trial)*37*time.Millisecond))
		crashAt = sched.Now()
		ports[victim].Crash()
		sched.RunUntil(crashAt.Add(2 * model.OSEKLatency()))
		if detected == 0 {
			panic(fmt.Sprintf("experiments: OSEK trial %d never detected the crash", trial))
		}
		res.Measured.Add(detected, detected.Sub(crashAt), "osek")
	}
	return res
}

// MeasureCANopenLatency measures the same crash under master-slave node
// guarding.
func MeasureCANopenLatency(c LatencyConfig) LatencyResult {
	model := analysis.RelatedWorkModel{
		CANopenGuardTime:  c.NMT.GuardTime,
		CANopenLifeFactor: c.NMT.LifeFactor,
	}
	res := LatencyResult{Scheme: "CANopen guarding", Bound: model.CANopenLatency()}
	for trial := 0; trial < c.Trials; trial++ {
		sched := sim.NewScheduler()
		b := bus.New(sched, bus.Config{})
		ports := make([]*bus.Port, c.N)
		for i := 0; i < c.N; i++ {
			ports[i] = b.Attach(can.NodeID(i))
		}
		slaves := make([]can.NodeID, 0, c.N-1)
		for i := 1; i < c.N; i++ {
			slaves = append(slaves, can.NodeID(i))
			baselines.NewCANopenSlave(canlayer.New(ports[i]))
		}
		master, err := baselines.NewCANopenMaster(sched, canlayer.New(ports[0]), slaves, c.NMT)
		if err != nil {
			panic(err)
		}
		victim := can.NodeID(1 + trial%(c.N-1))
		var detected sim.Time
		master.OnLost(func(s can.NodeID) {
			if s == victim && detected == 0 {
				detected = sched.Now()
			}
		})
		master.Start()
		sched.RunUntil(sim.Time(250*time.Millisecond + time.Duration(trial)*23*time.Millisecond))
		crashAt := sched.Now()
		ports[victim].Crash()
		sched.RunUntil(crashAt.Add(3 * model.CANopenLatency()))
		if detected == 0 {
			panic(fmt.Sprintf("experiments: CANopen trial %d never detected the crash", trial))
		}
		res.Measured.Add(detected, detected.Sub(crashAt), "canopen")
	}
	return res
}

// MeasureAllLatencies runs the full E4 comparison, with the TTP TDMA
// membership model (1 ms slots) included for the Figure 11 context.
func MeasureAllLatencies(c LatencyConfig) []LatencyResult {
	return []LatencyResult{
		MeasureCANELyLatency(c),
		MeasureOSEKLatency(c),
		MeasureCANopenLatency(c),
		MeasureTTPLatency(c, time.Millisecond),
	}
}

// FormatLatencies renders the comparison table.
func FormatLatencies(results []LatencyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %10s %10s %10s %12s\n", "scheme", "min", "mean", "max", "model bound")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-20s %10v %10v %10v %12v\n",
			r.Scheme, r.Measured.Min(), r.Measured.Mean(), r.Measured.Max(), r.Bound)
	}
	return sb.String()
}

// MeasureMembershipLatency measures the Figure 11 "membership latency"
// cell: crash to membership-change notification under the default
// configuration, across trials. The paper reports "tens of ms".
func MeasureMembershipLatency(trials int, seed int64) trace.Latencies {
	c := DefaultLatencyConfig()
	c.Trials = trials
	c.Seed = seed
	return MeasureCANELyLatency(c).Measured
}

// MeasureTTPLatency measures crash-to-removal latency under the TTP TDMA
// membership model — the reference point of Figures 1 and 11 ("membership:
// provided"). Detection is bounded by one TDMA round plus a slot.
func MeasureTTPLatency(c LatencyConfig, slot time.Duration) LatencyResult {
	cfg := baselines.TTPConfig{Slot: slot}
	res := LatencyResult{Scheme: "TTP (TDMA model)", Bound: cfg.MembershipLatencyBound(c.N)}
	for trial := 0; trial < c.Trials; trial++ {
		sched := sim.NewScheduler()
		cluster, err := baselines.NewTTPCluster(sched, c.N, cfg)
		if err != nil {
			panic(err)
		}
		victim := can.NodeID(1 + trial%(c.N-1))
		var detected sim.Time
		cluster.OnChange(0, func(_ can.NodeSet, failed can.NodeID) {
			if failed == victim && detected == 0 {
				detected = sched.Now()
			}
		})
		cluster.Start()
		sched.RunUntil(sim.Time(10*time.Millisecond + time.Duration(trial)*700*time.Microsecond))
		crashAt := sched.Now()
		cluster.Crash(victim)
		sched.RunUntil(crashAt.Add(3 * res.Bound))
		if detected == 0 {
			panic(fmt.Sprintf("experiments: TTP trial %d never detected the crash", trial))
		}
		res.Measured.Add(detected, detected.Sub(crashAt), "ttp")
	}
	return res
}

// TradeoffPoint is one point of the detection-latency / bandwidth
// trade-off sweep: the heartbeat period buys bandwidth at the price of
// latency.
type TradeoffPoint struct {
	Tb          time.Duration
	MeanLatency time.Duration
	MaxLatency  time.Duration
	Bound       time.Duration
	// ELSUtilization is the life-sign share of the bus over the run.
	ELSUtilization float64
}

// MeasureLatencyBandwidthTradeoff sweeps the heartbeat period Tb and
// measures both the crash-detection latency and the explicit life-sign
// bandwidth — the engineering trade-off behind the paper's choice to
// derive node activity from implicit traffic wherever possible.
func MeasureLatencyBandwidthTradeoff(tbs []time.Duration, n, trials int, seed int64) []TradeoffPoint {
	if len(tbs) == 0 {
		tbs = []time.Duration{5 * time.Millisecond, 10 * time.Millisecond,
			20 * time.Millisecond, 40 * time.Millisecond}
	}
	var out []TradeoffPoint
	for _, tb := range tbs {
		cfg := DefaultLatencyConfig()
		cfg.N = n
		cfg.Trials = trials
		cfg.Seed = seed
		cfg.CANELy.Tb = tb
		res := MeasureCANELyLatency(cfg)

		// Bandwidth: steady-state run, life-sign share.
		netCfg := cfg.CANELy
		netCfg.Seed = seed
		net := canely.NewNetwork(netCfg, n)
		net.BootstrapAll()
		net.Run(time.Second)
		st := net.Stats()
		out = append(out, TradeoffPoint{
			Tb:             tb,
			MeanLatency:    res.Measured.Mean(),
			MaxLatency:     res.Measured.Max(),
			Bound:          res.Bound,
			ELSUtilization: st.TypeUtilization(netCfg.Rate, time.Second, can.TypeELS),
		})
	}
	return out
}

// FormatTradeoff renders the sweep.
func FormatTradeoff(points []TradeoffPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s %12s %10s %12s\n", "Tb", "mean latency", "max latency", "bound", "ELS util")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-8v %12v %12v %10v %11.2f%%\n",
			p.Tb, p.MeanLatency, p.MaxLatency, p.Bound, 100*p.ELSUtilization)
	}
	return sb.String()
}
