package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"canely"
	"canely/internal/analysis"
	"canely/internal/baselines"
	"canely/internal/bus"
	"canely/internal/campaign"
	"canely/internal/can"
	"canely/internal/canlayer"
	"canely/internal/sim"
	"canely/internal/trace"
)

// LatencyResult summarizes one scheme's measured detection latencies.
type LatencyResult struct {
	Scheme   string
	Measured trace.Latencies
	Bound    time.Duration
	// Failed counts trials that never detected the crash (always 0 in the
	// paper's operating envelope; campaigns record rather than panic).
	Failed int
	// CI95 is the half-width of the 95% confidence interval of the mean.
	CI95 time.Duration
}

// LatencyConfig parameterizes the §6.6 related-work comparison (experiment
// E4): the same crash, detected by CANELy, by the OSEK NM logical ring and
// by CANopen node guarding, over several trials. Trials is free — the
// campaign engine runs them in parallel — and Workers bounds the pool
// (0 = GOMAXPROCS).
type LatencyConfig struct {
	N       int
	Trials  int
	Seed    int64
	Workers int
	CANELy  canely.Config
	OSEK    baselines.OSEKConfig
	NMT     baselines.CANopenConfig
}

// DefaultLatencyConfig returns the reference comparison point.
func DefaultLatencyConfig() LatencyConfig {
	return LatencyConfig{
		N:      8,
		Trials: 10,
		Seed:   1,
		CANELy: canely.DefaultConfig(),
		OSEK:   baselines.DefaultOSEKConfig(),
		NMT:    baselines.DefaultCANopenConfig(),
	}
}

// latencyTrial is one scheme-specific seeded crash trial: it returns the
// virtual detection instant and the crash-to-detection latency.
type latencyTrial func(p campaign.Params) (at sim.Time, d time.Duration, err error)

// measureLatencyCampaign fans the trials of one scheme out over the
// campaign worker pool and folds the detection samples back into a
// LatencyResult in trial order, so the distribution is identical to the old
// sequential loop regardless of the worker count.
func measureLatencyCampaign(scheme, label string, c LatencyConfig, bound time.Duration, trial latencyTrial) LatencyResult {
	res := LatencyResult{Scheme: scheme, Bound: bound}
	type sample struct {
		at sim.Time
		d  time.Duration
		ok bool
	}
	samples := make([]sample, c.Trials)
	spec := &campaign.Spec{
		Name:  scheme,
		Base:  c.CANELy,
		Seeds: campaign.SeedRange{Base: c.Seed, N: c.Trials},
		Run: func(p campaign.Params) (map[string]float64, error) {
			at, d, err := trial(p)
			if err != nil {
				return nil, err
			}
			// Each run owns its slice element: parallel writes never alias.
			samples[p.Index] = sample{at: at, d: d, ok: true}
			return map[string]float64{"detection_ms": float64(d) / 1e6}, nil
		},
	}
	runner := campaign.Runner{Workers: c.Workers}
	runs, err := runner.Run(context.Background(), spec)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s campaign: %v", scheme, err))
	}
	for _, s := range samples {
		if s.ok {
			res.Measured.Add(s.at, s.d, label)
		} else {
			res.Failed++
		}
	}
	res.CI95 = time.Duration(campaign.MergeMetric(runs, "detection_ms").CI95() * 1e6)
	return res
}

// MeasureCANELyLatency measures crash-to-notification latency of the
// CANELy failure detection + membership suite across Trials parallel
// seeded runs.
func MeasureCANELyLatency(c LatencyConfig) LatencyResult {
	return measureLatencyCampaign("CANELy", "canely", c, c.CANELy.DetectionLatencyBound(),
		func(p campaign.Params) (sim.Time, time.Duration, error) {
			victim := canely.NodeID(p.Trial % (c.N - 1))
			q := CrashTrial(p.Config, c.N, victim, time.Duration(p.Trial)*3*time.Millisecond)
			if !q.Detected {
				return 0, 0, fmt.Errorf("CANELy trial %d never detected the crash", p.Trial)
			}
			return sim.Time(q.DetectedAt), q.DetectionTime, nil
		})
}

// MeasureOSEKLatency measures the same crash under the OSEK NM ring.
func MeasureOSEKLatency(c LatencyConfig) LatencyResult {
	model := analysis.RelatedWorkModel{N: c.N, OSEKTTyp: c.OSEK.TTyp, OSEKTMax: c.OSEK.TMax}
	return measureLatencyCampaign("OSEK NM", "osek", c, model.OSEKLatency(),
		func(p campaign.Params) (sim.Time, time.Duration, error) {
			trial := p.Trial
			sched := sim.NewScheduler()
			b := bus.New(sched, bus.Config{})
			var ring can.NodeSet
			for i := 0; i < c.N; i++ {
				ring = ring.Add(can.NodeID(i))
			}
			ports := make([]*bus.Port, c.N)
			nodes := make([]*baselines.OSEKNode, c.N)
			var detected sim.Time
			victim := can.NodeID(1 + trial%(c.N-1))
			for i := 0; i < c.N; i++ {
				ports[i] = b.Attach(can.NodeID(i))
				n, err := baselines.NewOSEKNode(sched, canlayer.New(ports[i]), ring, c.OSEK)
				if err != nil {
					panic(err)
				}
				n.OnAbsent(func(gone can.NodeID) {
					if gone == victim && detected == 0 {
						detected = sched.Now()
					}
				})
				nodes[i] = n
			}
			for _, n := range nodes {
				n.Start()
			}
			sched.RunUntil(sim.Time(50*time.Millisecond + time.Duration(trial)*37*time.Millisecond))
			crashAt := sched.Now()
			ports[victim].Crash()
			sched.RunUntil(crashAt.Add(2 * model.OSEKLatency()))
			if detected == 0 {
				return 0, 0, fmt.Errorf("OSEK trial %d never detected the crash", trial)
			}
			return detected, detected.Sub(crashAt), nil
		})
}

// MeasureCANopenLatency measures the same crash under master-slave node
// guarding.
func MeasureCANopenLatency(c LatencyConfig) LatencyResult {
	model := analysis.RelatedWorkModel{
		CANopenGuardTime:  c.NMT.GuardTime,
		CANopenLifeFactor: c.NMT.LifeFactor,
	}
	return measureLatencyCampaign("CANopen guarding", "canopen", c, model.CANopenLatency(),
		func(p campaign.Params) (sim.Time, time.Duration, error) {
			trial := p.Trial
			sched := sim.NewScheduler()
			b := bus.New(sched, bus.Config{})
			ports := make([]*bus.Port, c.N)
			for i := 0; i < c.N; i++ {
				ports[i] = b.Attach(can.NodeID(i))
			}
			slaves := make([]can.NodeID, 0, c.N-1)
			for i := 1; i < c.N; i++ {
				slaves = append(slaves, can.NodeID(i))
				baselines.NewCANopenSlave(canlayer.New(ports[i]))
			}
			master, err := baselines.NewCANopenMaster(sched, canlayer.New(ports[0]), slaves, c.NMT)
			if err != nil {
				panic(err)
			}
			victim := can.NodeID(1 + trial%(c.N-1))
			var detected sim.Time
			master.OnLost(func(s can.NodeID) {
				if s == victim && detected == 0 {
					detected = sched.Now()
				}
			})
			master.Start()
			sched.RunUntil(sim.Time(250*time.Millisecond + time.Duration(trial)*23*time.Millisecond))
			crashAt := sched.Now()
			ports[victim].Crash()
			sched.RunUntil(crashAt.Add(3 * model.CANopenLatency()))
			if detected == 0 {
				return 0, 0, fmt.Errorf("CANopen trial %d never detected the crash", trial)
			}
			return detected, detected.Sub(crashAt), nil
		})
}

// MeasureTTPLatency measures crash-to-removal latency under the TTP TDMA
// membership model — the reference point of Figures 1 and 11 ("membership:
// provided"). Detection is bounded by one TDMA round plus a slot.
func MeasureTTPLatency(c LatencyConfig, slot time.Duration) LatencyResult {
	cfg := baselines.TTPConfig{Slot: slot}
	bound := cfg.MembershipLatencyBound(c.N)
	return measureLatencyCampaign("TTP (TDMA model)", "ttp", c, bound,
		func(p campaign.Params) (sim.Time, time.Duration, error) {
			trial := p.Trial
			sched := sim.NewScheduler()
			cluster, err := baselines.NewTTPCluster(sched, c.N, cfg)
			if err != nil {
				panic(err)
			}
			victim := can.NodeID(1 + trial%(c.N-1))
			var detected sim.Time
			cluster.OnChange(0, func(_ can.NodeSet, failed can.NodeID) {
				if failed == victim && detected == 0 {
					detected = sched.Now()
				}
			})
			cluster.Start()
			sched.RunUntil(sim.Time(10*time.Millisecond + time.Duration(trial)*700*time.Microsecond))
			crashAt := sched.Now()
			cluster.Crash(victim)
			sched.RunUntil(crashAt.Add(3 * bound))
			if detected == 0 {
				return 0, 0, fmt.Errorf("TTP trial %d never detected the crash", trial)
			}
			return detected, detected.Sub(crashAt), nil
		})
}

// MeasureAllLatencies runs the full E4 comparison, with the TTP TDMA
// membership model (1 ms slots) included for the Figure 11 context.
func MeasureAllLatencies(c LatencyConfig) []LatencyResult {
	return []LatencyResult{
		MeasureCANELyLatency(c),
		MeasureOSEKLatency(c),
		MeasureCANopenLatency(c),
		MeasureTTPLatency(c, time.Millisecond),
	}
}

// FormatLatencies renders the comparison table.
func FormatLatencies(results []LatencyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-20s %5s %10s %10s %10s %10s %10s %12s\n",
		"scheme", "n", "min", "mean", "p99", "max", "±95% CI", "model bound")
	us := func(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
	for _, r := range results {
		fmt.Fprintf(&sb, "%-20s %5d %10v %10v %10v %10v %10v %12v\n",
			r.Scheme, r.Measured.N(), us(r.Measured.Min()), us(r.Measured.Mean()),
			us(r.Measured.P99()), us(r.Measured.Max()), us(r.CI95), r.Bound)
	}
	return sb.String()
}

// MeasureMembershipLatency measures the Figure 11 "membership latency"
// cell: crash to membership-change notification under the default
// configuration, across trials. The paper reports "tens of ms".
func MeasureMembershipLatency(trials int, seed int64) trace.Latencies {
	c := DefaultLatencyConfig()
	c.Trials = trials
	c.Seed = seed
	return MeasureCANELyLatency(c).Measured
}

// TradeoffPoint is one point of the detection-latency / bandwidth
// trade-off sweep: the heartbeat period buys bandwidth at the price of
// latency.
type TradeoffPoint struct {
	Tb          time.Duration
	MeanLatency time.Duration
	P99Latency  time.Duration
	MaxLatency  time.Duration
	// CI95 is the half-width of the 95% confidence interval of the mean.
	CI95  time.Duration
	Bound time.Duration
	// ELSUtilization is the life-sign share of the bus over the run.
	ELSUtilization float64
}

// MeasureLatencyBandwidthTradeoff sweeps the heartbeat period Tb and
// measures both the crash-detection latency and the explicit life-sign
// bandwidth — the engineering trade-off behind the paper's choice to derive
// node activity from implicit traffic wherever possible. The whole sweep is
// one campaign: the Tb axis × (trials crash runs + one steady-state
// bandwidth run) per point, all in parallel.
func MeasureLatencyBandwidthTradeoff(sub canely.Substrate, tbs []time.Duration, n, trials int, seed int64) []TradeoffPoint {
	if len(tbs) == 0 {
		tbs = []time.Duration{5 * time.Millisecond, 10 * time.Millisecond,
			20 * time.Millisecond, 40 * time.Millisecond}
	}
	base := canely.DefaultConfig()
	base.Substrate = sub
	type cell struct {
		at  sim.Time
		d   time.Duration
		ok  bool
		els float64
	}
	cells := make([]cell, len(tbs)*(trials+1))
	spec := &campaign.Spec{
		Name: "latency-bandwidth-tradeoff",
		Base: base,
		Axes: []campaign.Axis{campaign.DurationAxis("tb",
			func(c *canely.Config, v time.Duration) { c.Tb = v }, tbs...)},
		Seeds: campaign.SeedRange{Base: seed, N: trials + 1},
		Run: func(p campaign.Params) (map[string]float64, error) {
			if p.Trial == trials {
				// The point's extra run: steady state, life-sign share.
				net := canely.NewNetwork(p.Config, n)
				net.BootstrapAll()
				net.Run(time.Second)
				els := net.Stats().TypeUtilization(p.Config.Rate, time.Second, can.TypeELS)
				cells[p.Index] = cell{els: els, ok: true}
				return map[string]float64{"els_util": els}, nil
			}
			victim := canely.NodeID(p.Trial % (n - 1))
			q := CrashTrial(p.Config, n, victim, time.Duration(p.Trial)*3*time.Millisecond)
			if !q.Detected {
				return nil, fmt.Errorf("tb=%v trial %d never detected the crash", p.Config.Tb, p.Trial)
			}
			cells[p.Index] = cell{at: sim.Time(q.DetectedAt), d: q.DetectionTime, ok: true}
			return map[string]float64{"detection_ms": float64(q.DetectionTime) / 1e6}, nil
		},
	}
	runner := campaign.Runner{}
	if _, err := runner.Run(context.Background(), spec); err != nil {
		panic(fmt.Sprintf("experiments: tradeoff campaign: %v", err))
	}
	out := make([]TradeoffPoint, 0, len(tbs))
	for pi, tb := range tbs {
		var lat trace.Latencies
		var ms campaign.Sample
		var els float64
		for t := 0; t <= trials; t++ {
			c := cells[pi*(trials+1)+t]
			if !c.ok {
				continue
			}
			if t == trials {
				els = c.els
				continue
			}
			lat.Add(c.at, c.d, "canely")
			ms.Add(float64(c.d) / 1e6)
		}
		cfg := base
		cfg.Tb = tb
		out = append(out, TradeoffPoint{
			Tb:             tb,
			MeanLatency:    lat.Mean(),
			P99Latency:     lat.P99(),
			MaxLatency:     lat.Max(),
			CI95:           time.Duration(ms.CI95() * 1e6),
			Bound:          cfg.DetectionLatencyBound(),
			ELSUtilization: els,
		})
	}
	return out
}

// FormatTradeoff renders the sweep.
func FormatTradeoff(points []TradeoffPoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s %12s %12s %10s %10s %12s\n",
		"Tb", "mean latency", "p99 latency", "max latency", "±95% CI", "bound", "ELS util")
	us := func(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
	for _, p := range points {
		fmt.Fprintf(&sb, "%-8v %12v %12v %12v %10v %10v %11.2f%%\n",
			p.Tb, us(p.MeanLatency), us(p.P99Latency), us(p.MaxLatency), us(p.CI95), p.Bound, 100*p.ELSUtilization)
	}
	return sb.String()
}
