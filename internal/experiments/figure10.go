// Package experiments contains the runnable reproductions of the paper's
// evaluation: each function regenerates one table or figure, pairing the
// analytical model of internal/analysis with measurements taken from the
// simulated CANELy system. The cmd/ tools and the repository benchmarks are
// thin wrappers over this package.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"canely"
	"canely/internal/analysis"
	"canely/internal/can"
)

// Figure10Point is one (Tm, series) cell of the reproduced Figure 10.
type Figure10Point struct {
	Tm         time.Duration
	Series     analysis.Series
	Analytical float64
	Measured   float64
}

// Figure10Config parameterizes the measured reproduction.
type Figure10Config struct {
	// N is the network size (paper: 32) and B the number of nodes that
	// signal activity only through explicit life-signs (paper: 8); the
	// remaining N-B nodes run cyclic application traffic fast enough to
	// signal implicitly.
	N, B int
	// F is the number of crash failures injected in the measurement cycle
	// (paper: 4) and C the join/leave count of the "multiple join/leave"
	// series (paper: 20).
	F, C int
	// Seed drives the simulation.
	Seed int64
	// Substrate selects the medium implementation (bit-accurate by default).
	// Utilization is computed from frame bit counts, which both substrates
	// account identically, so the choice trades fidelity of nothing for speed.
	Substrate canely.Substrate
}

// DefaultFigure10Config returns the paper's operating conditions.
func DefaultFigure10Config() Figure10Config {
	return Figure10Config{N: 32, B: 8, F: 4, C: 20, Seed: 1}
}

// netConfig builds the CANELy configuration for one Tm point. The paper's
// reference period issues one life-sign per signalling node per cycle, so
// the heartbeat period tracks the membership cycle period (Tb = Tm).
func (c Figure10Config) netConfig(tm time.Duration) canely.Config {
	cfg := canely.DefaultConfig()
	cfg.Seed = c.Seed
	cfg.Substrate = c.Substrate
	cfg.Tm = tm
	cfg.Tb = tm
	cfg.TjoinWait = 3 * tm
	return cfg
}

// protocolBits sums the wire bits consumed by the membership protocol
// suite (life-signs, failure-signs, join/leave requests, RHVs).
func protocolBits(st canely.BusStats) int64 {
	return st.BitsByType[can.TypeELS] +
		st.BitsByType[can.TypeFDA] +
		st.BitsByType[can.TypeJoin] +
		st.BitsByType[can.TypeLeave] +
		st.BitsByType[can.TypeRHA]
}

// measureSeries runs one scenario and returns the utilization attributable
// to the membership suite, normalized to one cycle period as the paper's
// analysis does: steady-state life-sign bits are measured over exactly one
// cycle, event-handling bits (FDA/RHA/requests) are charged in full to the
// cycle the events occur in.
func (c Figure10Config) measureSeries(tm time.Duration, s analysis.Series) float64 {
	cfg := c.netConfig(tm)
	// Membership nodes 0..N-1; the join series adds joiners above N.
	joiners := 0
	switch s {
	case analysis.SeriesJoinLeave:
		joiners = 1
	case analysis.SeriesMultiJoinLeave:
		joiners = c.C
	}
	if c.N+joiners > can.MaxNodes {
		panic(fmt.Sprintf("experiments: %d nodes exceed the %d limit", c.N+joiners, can.MaxNodes))
	}
	net := canely.NewNetwork(cfg, c.N)
	for i := 0; i < joiners; i++ {
		net.AddNode(canely.NodeID(c.N + i))
	}
	// Initial view: the N members.
	view := canely.NodeSet(0)
	for i := 0; i < c.N; i++ {
		view = view.Add(canely.NodeID(i))
	}
	for i := 0; i < c.N; i++ {
		net.Node(canely.NodeID(i)).Bootstrap(view)
	}
	// Nodes B..N-1 signal implicitly through fast cyclic traffic.
	for i := c.B; i < c.N; i++ {
		net.Node(canely.NodeID(i)).StartCyclicTraffic(1, tm/4, []byte{1, 2, 3, 4})
	}

	// Warm up two cycles, then measure life-sign steady state over one Tm.
	net.Run(2 * tm)
	before := net.Stats()
	net.Run(tm)
	lifeSignBits := net.Stats().Sub(before).BitsByType[can.TypeELS]

	// Inject the series' events and capture their full handling cost.
	before = net.Stats()
	switch s {
	case analysis.SeriesCrashFailures, analysis.SeriesJoinLeave, analysis.SeriesMultiJoinLeave:
		for i := 0; i < c.F; i++ {
			net.Node(canely.NodeID(c.B + i)).Crash()
		}
	}
	for i := 0; i < joiners; i++ {
		net.Node(canely.NodeID(c.N + i)).Join()
	}
	// Horizon: detection latency plus two cycles covers every notification
	// and the RHA executions they trigger.
	net.Run(cfg.DetectionLatencyBound() + 2*tm)
	window := net.Stats().Sub(before)
	eventBits := protocolBits(window) - window.BitsByType[can.TypeELS]

	totalBits := lifeSignBits + eventBits
	return float64(totalBits) / float64(cfg.Rate.Bits(tm))
}

// MeasureFigure10 reproduces Figure 10: for every Tm on the paper's x-axis
// and every series, the analytical worst case next to the measured
// utilization.
func MeasureFigure10(c Figure10Config, tms []time.Duration) []Figure10Point {
	if len(tms) == 0 {
		for tm := 30; tm <= 90; tm += 10 {
			tms = append(tms, time.Duration(tm)*time.Millisecond)
		}
	}
	model := analysis.DefaultModel()
	model.N, model.B, model.F = c.N, c.B, c.F
	// The simulator carries the CANELy mid in 29-bit identifiers, so the
	// like-for-like analytical column uses extended frame sizing (the
	// paper's own plot uses standard frames; cmd/bandwidth prints both).
	model.Format = can.FormatExtended
	var out []Figure10Point
	for _, tm := range tms {
		for s := analysis.SeriesNoChanges; s <= analysis.SeriesMultiJoinLeave; s++ {
			out = append(out, Figure10Point{
				Tm:         tm,
				Series:     s,
				Analytical: model.Utilization(tm, s),
				Measured:   c.measureSeries(tm, s),
			})
		}
	}
	return out
}

// FormatFigure10 renders measured-vs-analytical rows.
func FormatFigure10(points []Figure10Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %-22s %12s %12s\n", "Tm", "series", "analytical", "measured")
	for _, p := range points {
		fmt.Fprintf(&sb, "%-8v %-22s %11.2f%% %11.2f%%\n",
			p.Tm, p.Series, 100*p.Analytical, 100*p.Measured)
	}
	return sb.String()
}
