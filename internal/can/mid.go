package can

import "fmt"

// MsgType is the CANELy message-type component of the message control field
// (mid). Lower values yield numerically lower identifiers and therefore win
// bus arbitration: protocol control traffic outranks application data, as
// the paper's latency analysis assumes.
type MsgType uint8

// Message types. The ordering encodes arbitration priority.
const (
	// TypeFDA carries a failure-sign: remote frame, mid = {FDA, failed}.
	TypeFDA MsgType = 1
	// TypeRHA carries a reception history vector: data frame,
	// mid = {RHA, #RHV, src}, payload = RHV bitset.
	TypeRHA MsgType = 2
	// TypeJoin is a membership join request: remote frame, mid = {JOIN, r}.
	TypeJoin MsgType = 3
	// TypeLeave is a membership leave request: remote frame, mid = {LEAVE, r}.
	TypeLeave MsgType = 4
	// TypeELS is an explicit life-sign: remote frame, mid = {ELS, r}.
	TypeELS MsgType = 5
	// TypeData is ordinary application data: data frame,
	// mid = {DATA, stream, src, ref}.
	TypeData MsgType = 6
	// TypeRing is an OSEK NM logical-ring message (baseline comparator):
	// data frame, mid = {RING, dest, src}.
	TypeRing MsgType = 7
	// TypeGuard is a CANopen node-guarding exchange (baseline comparator):
	// remote frame mid = {GUARD, slave} for the master's request, data
	// frame mid = {GUARD, slave, slave} for the slave's status response.
	TypeGuard MsgType = 8
	// TypeRB is an EDCAN eager-diffusion reliable broadcast of application
	// data: data frame, mid = {RB, origin, retransmitter, ref}.
	TypeRB MsgType = 9
	// TypeSync is a clock synchronization exchange ([15]): data frames
	// mid = {SYNC, round, master, 0} for the tight sync indication and
	// mid = {SYNC, round, master, 1} for the follow-up carrying the
	// master's latched timestamp.
	TypeSync MsgType = 10
	// TypeRel is a RELCAN lazy reliable broadcast ([18]): the message is a
	// data frame mid = {REL, origin, origin, ref} (fallback retransmissions
	// substitute their own src), and the sender's confirmation is a remote
	// frame mid = {REL, origin, 0, ref|0x80}.
	TypeRel MsgType = 11
	// TypeFed is a federation membership digest exchanged between gateways:
	// data frame mid = {FED, segment, gateway}, payload = the segment's
	// membership view as a NodeSet. Lowest arbitration priority: digests
	// summarize state that is refreshed periodically, so they must never
	// displace intra-segment protocol traffic.
	TypeFed MsgType = 12
	// TypeGossip is a unicast SWIM-style gossip message (ping, ping-req,
	// ack, join — the baseline comparator over the lossy datagram medium):
	// data frame, mid = {GOSSIP, dest, src, kind<<4|seq}. On the datagram
	// substrate the Param component addresses the destination node; there
	// is no arbitration, so the priority position is nominal.
	TypeGossip MsgType = 13
)

const maxMsgType = TypeGossip

// RelConfirmFlag marks the confirmation variant of a RELCAN reference.
const RelConfirmFlag = 0x80

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case TypeFDA:
		return "FDA"
	case TypeRHA:
		return "RHA"
	case TypeJoin:
		return "JOIN"
	case TypeLeave:
		return "LEAVE"
	case TypeELS:
		return "ELS"
	case TypeData:
		return "DATA"
	case TypeRing:
		return "RING"
	case TypeGuard:
		return "GUARD"
	case TypeRB:
		return "RB"
	case TypeSync:
		return "SYNC"
	case TypeRel:
		return "REL"
	case TypeFed:
		return "FED"
	case TypeGossip:
		return "GOSSIP"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// MID is the CANELy message control field carried in the 29-bit CAN
// identifier (paper §5: "the message control field or message identifier
// (mid) consists of a type reference, an (optional) reference number and a
// node identifier").
//
// Bit layout, most significant first (lower value = higher priority):
//
//	| type:5 | param:8 | src:8 | ref:8 |
//
// Src is zero for clusterable remote frames (FDA, JOIN, LEAVE, ELS): those
// frames must be bit-identical across simultaneous senders so the wired-AND
// merges them. Param carries the protocol argument: the failed node for
// FDA, the joining/leaving/life-signing node for JOIN/LEAVE/ELS, the RHV
// cardinality for RHA, a stream tag for DATA.
type MID struct {
	Type  MsgType
	Param uint8
	Src   NodeID
	Ref   uint8
}

const (
	midTypeShift  = 24
	midParamShift = 16
	midSrcShift   = 8
)

// Encode packs the mid into a 29-bit identifier.
func (m MID) Encode() uint32 {
	return uint32(m.Type)<<midTypeShift |
		uint32(m.Param)<<midParamShift |
		uint32(m.Src)<<midSrcShift |
		uint32(m.Ref)
}

// Validate checks component ranges.
func (m MID) Validate() error {
	if m.Type == 0 || m.Type > maxMsgType {
		return fmt.Errorf("can: invalid message type %d", m.Type)
	}
	if !m.Src.Valid() {
		return fmt.Errorf("can: invalid source %d", m.Src)
	}
	return nil
}

// DecodeMID unpacks a 29-bit identifier into its mid components.
func DecodeMID(id uint32) (MID, error) {
	if id > MaxID {
		return MID{}, fmt.Errorf("can: identifier %#x exceeds 29 bits", id)
	}
	m := MID{
		Type:  MsgType(id >> midTypeShift),
		Param: uint8(id >> midParamShift),
		Src:   NodeID(uint8(id >> midSrcShift)),
		Ref:   uint8(id),
	}
	if err := m.Validate(); err != nil {
		return MID{}, err
	}
	return m, nil
}

// String renders the mid for traces, e.g. "FDA(n03)" or "DATA[2]@n01#17".
func (m MID) String() string {
	switch m.Type {
	case TypeFDA, TypeJoin, TypeLeave, TypeELS:
		return fmt.Sprintf("%v(%v)", m.Type, NodeID(m.Param))
	case TypeRHA:
		return fmt.Sprintf("RHA(#%d)@%v", RHACardinality(m), m.Src)
	case TypeFed:
		return fmt.Sprintf("FED(s%02d)@%v", m.Param, m.Src)
	default:
		return fmt.Sprintf("%v[%d]@%v#%d", m.Type, m.Param, m.Src, m.Ref)
	}
}

// FDASign builds the failure-sign mid for a failed node r. The frame is a
// remote frame with no source component so all diffusers cluster.
func FDASign(failed NodeID) MID { return MID{Type: TypeFDA, Param: uint8(failed)} }

// RHASign builds the mid of an RHV broadcast: the paper specifies
// mid = {RHA, #RHV, src} where #RHV is the cardinality of the proposed
// vector. Encoding 64-#RHV in the priority field makes larger vectors win
// arbitration, which speeds convergence toward the intersection.
func RHASign(card int, src NodeID) MID {
	return MID{Type: TypeRHA, Param: uint8(MaxNodes - card), Src: src}
}

// RHACardinality recovers #RHV from an RHA mid.
func RHACardinality(m MID) int { return MaxNodes - int(m.Param) }

// JoinSign builds the join-request mid for node r.
func JoinSign(r NodeID) MID { return MID{Type: TypeJoin, Param: uint8(r)} }

// LeaveSign builds the leave-request mid for node r.
func LeaveSign(r NodeID) MID { return MID{Type: TypeLeave, Param: uint8(r)} }

// ELSSign builds the explicit life-sign mid for node r.
func ELSSign(r NodeID) MID { return MID{Type: TypeELS, Param: uint8(r)} }

// DataSign builds an application-data mid on a stream tag.
func DataSign(stream uint8, src NodeID, ref uint8) MID {
	return MID{Type: TypeData, Param: stream, Src: src, Ref: ref}
}

// RingSign builds an OSEK NM logical-ring message mid: src passes the ring
// token to dest.
func RingSign(dest, src NodeID) MID {
	return MID{Type: TypeRing, Param: uint8(dest), Src: src}
}

// GuardSign builds the CANopen master's node-guarding request for a slave
// (remote frame).
func GuardSign(slave NodeID) MID { return MID{Type: TypeGuard, Param: uint8(slave)} }

// GuardReplySign builds the slave's node-guarding status response (data
// frame answering GuardSign).
func GuardReplySign(slave NodeID) MID {
	return MID{Type: TypeGuard, Param: uint8(slave), Src: slave, Ref: 1}
}

// RBSign builds an EDCAN reliable-broadcast mid: a copy of message
// (origin, ref) transmitted by node src.
func RBSign(origin, src NodeID, ref uint8) MID {
	return MID{Type: TypeRB, Param: uint8(origin), Src: src, Ref: ref}
}

// RelSign builds a RELCAN message mid: message (origin, ref) transmitted
// by node src (the origin itself, or a fallback retransmitter).
func RelSign(origin, src NodeID, ref uint8) MID {
	return MID{Type: TypeRel, Param: uint8(origin), Src: src, Ref: ref &^ RelConfirmFlag}
}

// RelConfirmSign builds the sender's RELCAN confirmation mid.
func RelConfirmSign(origin NodeID, ref uint8) MID {
	return MID{Type: TypeRel, Param: uint8(origin), Ref: ref | RelConfirmFlag}
}

// FedDigestSign builds the mid of a federation membership digest: gateway
// gw summarizing the view of segment seg.
func FedDigestSign(seg NodeID, gw NodeID) MID {
	return MID{Type: TypeFed, Param: uint8(seg), Src: gw}
}

// GossipSign builds a unicast SWIM gossip message mid addressed to dest.
// Ref packs the message kind in its high nibble and a 4-bit sequence number
// in its low nibble (internal/gossip owns the encoding).
func GossipSign(dest, src NodeID, ref uint8) MID {
	return MID{Type: TypeGossip, Param: uint8(dest), Src: src, Ref: ref}
}

// GossipDest recovers the destination node of a gossip mid.
func GossipDest(m MID) NodeID { return NodeID(m.Param) }

// SyncSign builds the tight clock-sync indication mid for a round.
func SyncSign(round uint8, master NodeID) MID {
	return MID{Type: TypeSync, Param: round, Src: master, Ref: 0}
}

// FollowUpSign builds the follow-up mid carrying the master's timestamp.
func FollowUpSign(round uint8, master NodeID) MID {
	return MID{Type: TypeSync, Param: round, Src: master, Ref: 1}
}
