package can

import (
	"fmt"
	"time"
)

// BitRate is the bus signalling rate in bits per second. CAN trades length
// for speed; the standard operating points are listed as constants.
type BitRate int

// Standard CAN operating points (ISO 11898 / CiA DS-102).
const (
	Rate1Mbps   BitRate = 1_000_000 // up to 40 m
	Rate500Kbps BitRate = 500_000   // up to 100 m
	Rate250Kbps BitRate = 250_000   // up to 250 m
	Rate125Kbps BitRate = 125_000   // up to 500 m
	Rate50Kbps  BitRate = 50_000    // up to 1000 m
)

// BitTime returns the duration of one bit on the wire.
func (r BitRate) BitTime() time.Duration {
	if r <= 0 {
		panic(fmt.Sprintf("can: non-positive bit rate %d", r))
	}
	return time.Duration(int64(time.Second) / int64(r))
}

// DurationOf returns the time taken by the given number of bits.
func (r BitRate) DurationOf(bitCount int) time.Duration {
	return time.Duration(bitCount) * r.BitTime()
}

// Bits returns how many whole bit times fit in d.
func (r BitRate) Bits(d time.Duration) int {
	bt := r.BitTime()
	return int(d / bt)
}

// Framing constants (ISO 11898). All CANELy traffic uses the extended
// (29-bit identifier) format; the standard format is retained for the
// analytical comparisons of internal/analysis.
const (
	// InterframeBits is the intermission between consecutive frames.
	InterframeBits = 3
	// ErrorFrameMinBits is an active error frame with no superposition:
	// 6 flag bits + 8 delimiter bits. This matches the 14 bit-time lower
	// inaccessibility bound reported in the paper (Figure 11).
	ErrorFrameMinBits = 14
	// ErrorFrameMaxBits is the worst case: 6 flag bits + 6 superposed flag
	// bits from other nodes + 8 delimiter bits.
	ErrorFrameMaxBits = 20
	// OverloadFrameMaxBits mirrors the error frame worst case.
	OverloadFrameMaxBits = 20
)

// nominal (unstuffed) frame sizes; s = payload bytes. Remote frames carry
// no data field (s contributes zero bits) but keep their DLC value.
const (
	stdFixedBits      = 44 // SOF+ID11+RTR+IDE+r0+DLC4+CRC15+del+ACK2+EOF7
	stdStuffableBits  = 34 // SOF through CRC sequence
	extFixedBits      = 64 // adds SRR+IDE+ID18+r1 over the standard format
	extStuffableBits  = 54
	stuffWindowLength = 5 // a stuff bit after every run of 5 equal bits
)

// FrameFormat selects identifier width for sizing computations.
type FrameFormat int

// Frame formats.
const (
	FormatStandard FrameFormat = iota // 11-bit identifiers
	FormatExtended                    // 29-bit identifiers
)

// String names the format.
func (f FrameFormat) String() string {
	if f == FormatStandard {
		return "standard"
	}
	return "extended"
}

// NominalFrameBits returns the frame length in bits before stuffing.
// dataBytes is the payload size for data frames and must be 0 for remote
// frames (their data field is absent regardless of DLC).
func NominalFrameBits(f FrameFormat, dataBytes int) int {
	if dataBytes < 0 || dataBytes > MaxData {
		panic(fmt.Sprintf("can: data size %d out of range", dataBytes))
	}
	base := stdFixedBits
	if f == FormatExtended {
		base = extFixedBits
	}
	return base + 8*dataBytes
}

// MaxStuffBits returns the worst-case number of inserted stuff bits for a
// frame with the given payload. After the first stuff opportunity at bit 5,
// a pathological pattern forces one stuff bit every 4 original bits:
// floor((L-1)/4) for a stuffable region of L bits.
func MaxStuffBits(f FrameFormat, dataBytes int) int {
	if dataBytes < 0 || dataBytes > MaxData {
		panic(fmt.Sprintf("can: data size %d out of range", dataBytes))
	}
	l := stdStuffableBits
	if f == FormatExtended {
		l = extStuffableBits
	}
	l += 8 * dataBytes
	return (l - 1) / (stuffWindowLength - 1)
}

// WorstFrameBits returns the on-wire frame length in bits with worst-case
// stuffing, excluding the interframe space.
func WorstFrameBits(f FrameFormat, dataBytes int) int {
	return NominalFrameBits(f, dataBytes) + MaxStuffBits(f, dataBytes)
}

// WorstSlotBits returns the worst-case bus occupancy of one frame: frame
// bits plus the interframe space that must follow before another frame may
// start. This is the unit the bandwidth analysis (Figure 10) accounts in.
func WorstSlotBits(f FrameFormat, dataBytes int) int {
	return WorstFrameBits(f, dataBytes) + InterframeBits
}

// FrameBits returns the on-wire size of a concrete frame with worst-case
// stuffing. Remote frames have no data field.
func FrameBits(fr Frame) int {
	data := int(fr.DLC)
	if fr.RTR {
		data = 0
	}
	return WorstFrameBits(FormatExtended, data)
}

// SlotBits returns FrameBits plus the interframe space.
func SlotBits(fr Frame) int { return FrameBits(fr) + InterframeBits }

// TxTime returns the wire time of a concrete frame at the given rate,
// excluding interframe space.
func TxTime(fr Frame, r BitRate) time.Duration {
	return r.DurationOf(FrameBits(fr))
}

// SlotTime returns the wire time of a frame plus interframe space.
func SlotTime(fr Frame, r BitRate) time.Duration {
	return r.DurationOf(SlotBits(fr))
}
