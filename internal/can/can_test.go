package can

import (
	"testing"
	"testing/quick"
)

func TestMIDEncodeDecodeRoundTrip(t *testing.T) {
	mids := []MID{
		FDASign(3),
		ELSSign(63),
		JoinSign(0),
		LeaveSign(17),
		RHASign(32, 5),
		DataSign(9, 12, 200),
	}
	for _, m := range mids {
		id := m.Encode()
		if id > MaxID {
			t.Fatalf("%v encodes to %#x > 29 bits", m, id)
		}
		got, err := DecodeMID(id)
		if err != nil {
			t.Fatalf("DecodeMID(%v): %v", m, err)
		}
		if got != m {
			t.Fatalf("round trip: got %+v want %+v", got, m)
		}
	}
}

func TestMIDRoundTripProperty(t *testing.T) {
	prop := func(typ, param, src, ref uint8) bool {
		m := MID{
			Type:  MsgType(typ%uint8(maxMsgType)) + 1,
			Param: param,
			Src:   NodeID(src % MaxNodes),
			Ref:   ref,
		}
		got, err := DecodeMID(m.Encode())
		return err == nil && got == m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMIDPriorityOrdering(t *testing.T) {
	// Protocol control traffic must win arbitration over application data.
	fda := FDASign(63).Encode()
	rha := RHASign(1, 63).Encode()
	els := ELSSign(63).Encode()
	data := DataSign(0, 0, 0).Encode()
	if fda >= rha || rha >= els || els >= data {
		t.Fatalf("priority inversion: FDA=%#x RHA=%#x ELS=%#x DATA=%#x", fda, rha, els, data)
	}
}

func TestRHACardinalityPriority(t *testing.T) {
	// Larger RHV cardinality must win arbitration (lower identifier) so the
	// convergence toward intersections proceeds from the richest vectors.
	big := RHASign(40, 1).Encode()
	small := RHASign(3, 1).Encode()
	if big >= small {
		t.Fatalf("RHA(#40)=%#x should outrank RHA(#3)=%#x", big, small)
	}
	if got := RHACardinality(RHASign(40, 1)); got != 40 {
		t.Fatalf("RHACardinality = %d, want 40", got)
	}
}

func TestDecodeMIDRejectsGarbage(t *testing.T) {
	if _, err := DecodeMID(1 << 29); err == nil {
		t.Fatal("identifier over 29 bits should be rejected")
	}
	if _, err := DecodeMID(0); err == nil {
		t.Fatal("type 0 should be rejected")
	}
	bad := MID{Type: maxMsgType + 1}.Encode()
	if _, err := DecodeMID(bad); err == nil {
		t.Fatal("unknown type should be rejected")
	}
}

func TestFrameValidate(t *testing.T) {
	f := Frame{ID: MaxID, DLC: 8}
	if err := f.Validate(); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	if err := (Frame{ID: MaxID + 1}).Validate(); err == nil {
		t.Fatal("oversized identifier accepted")
	}
	if err := (Frame{DLC: 9}).Validate(); err == nil {
		t.Fatal("oversized DLC accepted")
	}
}

func TestFramePayload(t *testing.T) {
	var f Frame
	f.SetPayload([]byte{1, 2, 3})
	if f.DLC != 3 {
		t.Fatalf("DLC = %d", f.DLC)
	}
	p := f.Payload()
	if len(p) != 3 || p[0] != 1 || p[2] != 3 {
		t.Fatalf("payload = %v", p)
	}
	f.RTR = true
	if f.Payload() != nil {
		t.Fatal("remote frame payload should be nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("oversized payload should panic")
		}
	}()
	f.SetPayload(make([]byte, 9))
}

func TestSameWireClustering(t *testing.T) {
	a := Frame{ID: FDASign(3).Encode(), RTR: true}
	b := Frame{ID: FDASign(3).Encode(), RTR: true}
	c := Frame{ID: FDASign(4).Encode(), RTR: true}
	d := Frame{ID: FDASign(3).Encode()}
	if !a.SameWire(b) {
		t.Fatal("identical remote frames must cluster")
	}
	if a.SameWire(c) {
		t.Fatal("different identifiers must not cluster")
	}
	if a.SameWire(d) || d.SameWire(d) {
		t.Fatal("data frames must never cluster")
	}
}

func TestNodeSetBasics(t *testing.T) {
	s := MakeSet(1, 5, 63)
	if !s.Contains(5) || s.Contains(2) {
		t.Fatal("Contains wrong")
	}
	if s.Count() != 3 {
		t.Fatalf("Count = %d", s.Count())
	}
	s = s.Remove(5)
	if s.Contains(5) || s.Count() != 2 {
		t.Fatal("Remove wrong")
	}
	ids := MakeSet(7, 3, 1).IDs()
	if len(ids) != 3 || ids[0] != 1 || ids[1] != 3 || ids[2] != 7 {
		t.Fatalf("IDs = %v", ids)
	}
	if got := MakeSet(0, 3).String(); got != "{n00,n03}" {
		t.Fatalf("String = %q", got)
	}
	if EmptySet.String() != "{}" {
		t.Fatal("empty String")
	}
}

func TestNodeSetAlgebra(t *testing.T) {
	a := MakeSet(1, 2, 3)
	b := MakeSet(3, 4)
	if got := a.Union(b); got != MakeSet(1, 2, 3, 4) {
		t.Fatalf("Union = %v", got)
	}
	if got := a.Intersect(b); got != MakeSet(3) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := a.Diff(b); got != MakeSet(1, 2) {
		t.Fatalf("Diff = %v", got)
	}
	if !MakeSet(1).SubsetOf(a) || b.SubsetOf(a) {
		t.Fatal("SubsetOf wrong")
	}
	if RangeSet(0, 4) != MakeSet(0, 1, 2, 3) {
		t.Fatal("RangeSet wrong")
	}
}

func TestNodeSetBytesRoundTrip(t *testing.T) {
	prop := func(v uint64) bool {
		s := NodeSet(v)
		got, err := SetFromBytes(s.Bytes())
		return err == nil && got == s
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	if _, err := SetFromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("short payload accepted")
	}
}

func TestNodeSetAlgebraProperties(t *testing.T) {
	prop := func(x, y, z uint64) bool {
		a, b, c := NodeSet(x), NodeSet(y), NodeSet(z)
		// Intersection distributes over union; diff/containment laws.
		if a.Intersect(b.Union(c)) != a.Intersect(b).Union(a.Intersect(c)) {
			return false
		}
		if !a.Intersect(b).SubsetOf(a) {
			return false
		}
		if !a.Diff(b).SubsetOf(a) || !a.Diff(b).Intersect(b).Empty() {
			return false
		}
		return a.Union(b).Count() == a.Count()+b.Count()-a.Intersect(b).Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBitRate(t *testing.T) {
	if Rate1Mbps.BitTime() != 1000 { // 1 µs in ns
		t.Fatalf("bit time = %v", Rate1Mbps.BitTime())
	}
	if Rate50Kbps.BitTime() != 20000 {
		t.Fatalf("50k bit time = %v", Rate50Kbps.BitTime())
	}
	if Rate1Mbps.DurationOf(100) != 100*Rate1Mbps.BitTime() {
		t.Fatal("DurationOf wrong")
	}
	if Rate1Mbps.Bits(Rate1Mbps.DurationOf(55)) != 55 {
		t.Fatal("Bits inversion wrong")
	}
}

func TestFrameSizing(t *testing.T) {
	// Standard data frame, 0 bytes: 44 nominal, 8 worst-case stuff bits.
	if got := NominalFrameBits(FormatStandard, 0); got != 44 {
		t.Fatalf("std nominal(0) = %d", got)
	}
	if got := MaxStuffBits(FormatStandard, 0); got != 8 {
		t.Fatalf("std stuff(0) = %d", got)
	}
	// Standard 8-byte: 108 nominal, stuffable 98 -> 24 stuff.
	if got := NominalFrameBits(FormatStandard, 8); got != 108 {
		t.Fatalf("std nominal(8) = %d", got)
	}
	if got := MaxStuffBits(FormatStandard, 8); got != 24 {
		t.Fatalf("std stuff(8) = %d", got)
	}
	// Extended 8-byte: 128 nominal, stuffable 118 -> 29 stuff.
	if got := NominalFrameBits(FormatExtended, 8); got != 128 {
		t.Fatalf("ext nominal(8) = %d", got)
	}
	if got := MaxStuffBits(FormatExtended, 8); got != 29 {
		t.Fatalf("ext stuff(8) = %d", got)
	}
	if got := WorstFrameBits(FormatExtended, 8); got != 157 {
		t.Fatalf("ext worst(8) = %d", got)
	}
	if got := WorstSlotBits(FormatExtended, 8); got != 160 {
		t.Fatalf("ext slot(8) = %d", got)
	}
}

func TestFrameBitsRemoteIgnoresDLC(t *testing.T) {
	rtr := Frame{ID: 1 << midTypeShift, RTR: true, DLC: 8}
	data := Frame{ID: 1 << midTypeShift, DLC: 8}
	if FrameBits(rtr) >= FrameBits(data) {
		t.Fatal("remote frame must be shorter than same-DLC data frame")
	}
	if FrameBits(rtr) != WorstFrameBits(FormatExtended, 0) {
		t.Fatal("remote frame size must ignore the data field")
	}
}

func TestTxAndSlotTime(t *testing.T) {
	f := Frame{ID: ELSSign(1).Encode(), RTR: true}
	if TxTime(f, Rate1Mbps) != Rate1Mbps.DurationOf(FrameBits(f)) {
		t.Fatal("TxTime wrong")
	}
	if SlotTime(f, Rate1Mbps)-TxTime(f, Rate1Mbps) != Rate1Mbps.DurationOf(InterframeBits) {
		t.Fatal("SlotTime must add the interframe space")
	}
}

func TestFrameString(t *testing.T) {
	f := Frame{ID: FDASign(7).Encode(), RTR: true}
	if got := f.String(); got != "rtr FDA(n07) dlc=0" {
		t.Fatalf("String = %q", got)
	}
}

func TestNodeIDValid(t *testing.T) {
	if !NodeID(63).Valid() || NodeID(64).Valid() {
		t.Fatal("Valid wrong")
	}
	if NodeID(7).String() != "n07" {
		t.Fatal("String wrong")
	}
}

func TestSignConstructors(t *testing.T) {
	cases := []struct {
		mid  MID
		want MID
	}{
		{RingSign(3, 1), MID{Type: TypeRing, Param: 3, Src: 1}},
		{GuardSign(5), MID{Type: TypeGuard, Param: 5}},
		{GuardReplySign(5), MID{Type: TypeGuard, Param: 5, Src: 5, Ref: 1}},
		{RBSign(2, 4, 9), MID{Type: TypeRB, Param: 2, Src: 4, Ref: 9}},
		{RelSign(2, 4, 9), MID{Type: TypeRel, Param: 2, Src: 4, Ref: 9}},
		{RelSign(2, 4, 9|RelConfirmFlag), MID{Type: TypeRel, Param: 2, Src: 4, Ref: 9}},
		{RelConfirmSign(2, 9), MID{Type: TypeRel, Param: 2, Ref: 9 | RelConfirmFlag}},
		{SyncSign(7, 0), MID{Type: TypeSync, Param: 7}},
		{FollowUpSign(7, 0), MID{Type: TypeSync, Param: 7, Ref: 1}},
	}
	for i, c := range cases {
		if c.mid != c.want {
			t.Fatalf("case %d: got %+v want %+v", i, c.mid, c.want)
		}
		// Every constructor must produce a valid, round-trippable mid.
		got, err := DecodeMID(c.mid.Encode())
		if err != nil || got != c.mid {
			t.Fatalf("case %d: round trip failed: %v %v", i, got, err)
		}
	}
}

func TestMsgTypeStringsAll(t *testing.T) {
	want := map[MsgType]string{
		TypeFDA: "FDA", TypeRHA: "RHA", TypeJoin: "JOIN", TypeLeave: "LEAVE",
		TypeELS: "ELS", TypeData: "DATA", TypeRing: "RING", TypeGuard: "GUARD",
		TypeRB: "RB", TypeSync: "SYNC", TypeRel: "REL",
	}
	for typ, s := range want {
		if typ.String() != s {
			t.Fatalf("String(%d) = %q, want %q", typ, typ.String(), s)
		}
	}
	if MsgType(99).String() != "type(99)" {
		t.Fatal("unknown type String wrong")
	}
}

func TestMIDStringForms(t *testing.T) {
	for mid, want := range map[MID]string{
		FDASign(3):           "FDA(n03)",
		ELSSign(4):           "ELS(n04)",
		JoinSign(5):          "JOIN(n05)",
		LeaveSign(6):         "LEAVE(n06)",
		RHASign(10, 2):       "RHA(#10)@n02",
		DataSign(1, 2, 3):    "DATA[1]@n02#3",
		RingSign(1, 2):       "RING[1]@n02#0",
		GuardSign(1):         "GUARD[1]@n00#0",
		RBSign(1, 2, 3):      "RB[1]@n02#3",
		SyncSign(1, 2):       "SYNC[1]@n02#0",
		RelConfirmSign(1, 2): "REL[1]@n00#130",
	} {
		if got := mid.String(); got != want {
			t.Fatalf("String(%+v) = %q, want %q", mid, got, want)
		}
	}
}

func TestFrameStringFallback(t *testing.T) {
	f := Frame{ID: 0x1FFFFFFF, DLC: 2} // undecodable type field
	if got := f.String(); got != "data id=0x1fffffff dlc=2" {
		t.Fatalf("String = %q", got)
	}
}

func TestFrameFormatString(t *testing.T) {
	if FormatStandard.String() != "standard" || FormatExtended.String() != "extended" {
		t.Fatal("FrameFormat strings wrong")
	}
}

func TestNodeSetPanicsOutOfRange(t *testing.T) {
	for _, fn := range []func(){
		func() { EmptySet.Add(64) },
		func() { FullSet.Remove(200) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
	if FullSet.Contains(NodeID(99)) {
		t.Fatal("Contains out of range should be false, not panic")
	}
}

func TestBitRatePanicsAndBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive rate should panic")
		}
	}()
	BitRate(0).BitTime()
}

func TestFrameSizingPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NominalFrameBits(FormatStandard, 9) },
		func() { MaxStuffBits(FormatExtended, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestMIDValidateSrcRange(t *testing.T) {
	m := MID{Type: TypeData, Src: 64}
	if m.Validate() == nil {
		t.Fatal("src out of range accepted")
	}
}
