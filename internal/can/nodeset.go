package can

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"strings"
)

// NodeSet is a set of node identifiers, represented as a 64-bit mask so it
// serializes into exactly one CAN payload. It is the wire and in-memory form
// of the paper's node sets: the membership view Rf, the joining set Rj, the
// leaving set Rl, the failed set F and the reception history vector RHV.
//
// NodeSet is a value type: operations return new sets and never mutate the
// receiver, so views can be handed to upper layers without defensive copies.
type NodeSet uint64

// EmptySet is the set with no members.
const EmptySet NodeSet = 0

// FullSet contains every representable node (the paper's universe Π).
const FullSet NodeSet = ^NodeSet(0)

// MakeSet builds a set from the listed node ids.
func MakeSet(ids ...NodeID) NodeSet {
	var s NodeSet
	for _, id := range ids {
		s = s.Add(id)
	}
	return s
}

// RangeSet returns the set {lo, lo+1, ..., hi-1}.
func RangeSet(lo, hi NodeID) NodeSet {
	var s NodeSet
	for id := lo; id < hi; id++ {
		s = s.Add(id)
	}
	return s
}

// Add returns the set with id included.
func (s NodeSet) Add(id NodeID) NodeSet {
	if !id.Valid() {
		panic(fmt.Sprintf("can: node id %d out of range", id))
	}
	return s | 1<<uint(id)
}

// Remove returns the set with id excluded.
func (s NodeSet) Remove(id NodeID) NodeSet {
	if !id.Valid() {
		panic(fmt.Sprintf("can: node id %d out of range", id))
	}
	return s &^ (1 << uint(id))
}

// Contains reports membership of id.
func (s NodeSet) Contains(id NodeID) bool {
	return id.Valid() && s&(1<<uint(id)) != 0
}

// Union returns s ∪ t.
func (s NodeSet) Union(t NodeSet) NodeSet { return s | t }

// Intersect returns s ∩ t.
func (s NodeSet) Intersect(t NodeSet) NodeSet { return s & t }

// Diff returns s \ t.
func (s NodeSet) Diff(t NodeSet) NodeSet { return s &^ t }

// Count returns the cardinality |s|.
func (s NodeSet) Count() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool { return s == 0 }

// SubsetOf reports whether every member of s is in t.
func (s NodeSet) SubsetOf(t NodeSet) bool { return s&^t == 0 }

// Lowest returns the smallest member id. It must not be called on an empty
// set. Combined with Remove it iterates a set in the same ascending order
// as IDs, without the allocation — the idiom of the simulation hot paths:
//
//	for s := set; !s.Empty(); {
//		id := s.Lowest()
//		s = s.Remove(id)
//		...
//	}
func (s NodeSet) Lowest() NodeID {
	if s.Empty() {
		panic("can: Lowest on empty NodeSet")
	}
	return NodeID(bits.TrailingZeros64(uint64(s)))
}

// IDs lists the members in ascending order.
func (s NodeSet) IDs() []NodeID {
	out := make([]NodeID, 0, s.Count())
	for v := uint64(s); v != 0; {
		i := bits.TrailingZeros64(v)
		out = append(out, NodeID(i))
		v &^= 1 << uint(i)
	}
	return out
}

// Bytes serializes the set into an 8-byte little-endian payload.
func (s NodeSet) Bytes() []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(s))
	return b[:]
}

// SetFromBytes parses an 8-byte payload produced by Bytes.
func SetFromBytes(b []byte) (NodeSet, error) {
	if len(b) != 8 {
		return 0, fmt.Errorf("can: node set payload must be 8 bytes, got %d", len(b))
	}
	return NodeSet(binary.LittleEndian.Uint64(b)), nil
}

// String renders the set as "{n00,n03,n07}".
func (s NodeSet) String() string {
	if s.Empty() {
		return "{}"
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, id := range s.IDs() {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(id.String())
	}
	sb.WriteByte('}')
	return sb.String()
}
