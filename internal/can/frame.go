// Package can models the Controller Area Network data link layer as seen by
// the CANELy protocol suite: frames (data and remote), the CANELy message
// identifier (mid) encoding, node identity sets, and exact frame-length /
// transmission-time arithmetic including worst-case bit stuffing.
//
// The model follows ISO 11898 framing. Nothing here is time-aware; the bus
// simulator (internal/bus) combines these sizes with a bit rate to obtain
// transmission and inaccessibility durations.
package can

import (
	"fmt"
)

// NodeID identifies a node (site) on the bus. CANELy's reception history
// vector is a set of nodes that must fit a single CAN payload (8 bytes), so
// node identifiers range over [0, MaxNodes).
type NodeID uint8

// MaxNodes is the highest supported network size: a 64-bit reception
// history vector is exactly one CAN data field.
const MaxNodes = 64

// Valid reports whether the node identifier is in range.
func (n NodeID) Valid() bool { return n < MaxNodes }

// String renders the node id, e.g. "n07".
func (n NodeID) String() string { return fmt.Sprintf("n%02d", uint8(n)) }

// MaxData is the CAN payload limit in bytes.
const MaxData = 8

// Frame is a CAN frame as exchanged on the bus. Identifiers are 29-bit
// extended identifiers: the CANELy mid encoding (type, param, source,
// reference) needs more than the 11 bits of a standard frame.
type Frame struct {
	// ID is the 29-bit arbitration identifier. Lower values win arbitration.
	ID uint32
	// RTR marks a remote frame. Remote frames carry no data; identical
	// remote frames transmitted simultaneously by several nodes merge into
	// one physical frame (wired-AND), which CANELy exploits heavily.
	RTR bool
	// DLC is the data length code, 0..8. For remote frames it encodes the
	// length of the requested data frame and the data field is empty.
	DLC uint8
	// Data holds the payload; only Data[:DLC] is meaningful, and only for
	// data frames.
	Data [MaxData]byte
}

// MaxID is the largest 29-bit identifier.
const MaxID = 1<<29 - 1

// Validate checks structural invariants.
func (f Frame) Validate() error {
	if f.ID > MaxID {
		return fmt.Errorf("can: identifier %#x exceeds 29 bits", f.ID)
	}
	if f.DLC > MaxData {
		return fmt.Errorf("can: DLC %d exceeds %d", f.DLC, MaxData)
	}
	return nil
}

// Payload returns the meaningful data bytes (nil for remote frames).
func (f Frame) Payload() []byte {
	if f.RTR {
		return nil
	}
	return f.Data[:f.DLC]
}

// SetPayload copies p into the frame and sets the DLC. It panics if p
// exceeds MaxData: payload sizing is a static protocol property, so an
// oversized payload is a programming error, not a runtime condition.
func (f *Frame) SetPayload(p []byte) {
	if len(p) > MaxData {
		panic(fmt.Sprintf("can: payload of %d bytes exceeds %d", len(p), MaxData))
	}
	f.DLC = uint8(len(p))
	f.Data = [MaxData]byte{}
	copy(f.Data[:], p)
}

// SameWire reports whether two frames are indistinguishable on the wire,
// i.e. whether simultaneous transmissions merge into a single physical
// frame. Data frames never merge (a single transmitter is assumed per
// identifier); remote frames merge when identifier and DLC coincide.
func (f Frame) SameWire(g Frame) bool {
	if !f.RTR || !g.RTR {
		return false
	}
	return f.ID == g.ID && f.DLC == g.DLC
}

// String renders the frame compactly for traces.
func (f Frame) String() string {
	kind := "data"
	if f.RTR {
		kind = "rtr"
	}
	mid, err := DecodeMID(f.ID)
	if err == nil {
		return fmt.Sprintf("%s %v dlc=%d", kind, mid, f.DLC)
	}
	return fmt.Sprintf("%s id=%#x dlc=%d", kind, f.ID, f.DLC)
}
