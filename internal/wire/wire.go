// Package wire defines the framing of the canelyd broker protocol: the
// messages a live node exchanges with the bus-broker process that emulates
// the CAN MAC over a local TCP or Unix-domain socket (internal/rt).
//
// The protocol is deliberately minimal. A client identifies itself with
// Hello and receives Welcome carrying the broker's signalling rate; from
// then on the client sends transmit requests, aborts and an optional
// fail-silence notice, and the broker sends frame indications (own
// transmissions flagged), transmit confirmations and fault-confinement
// state transitions. All MAC behaviour — priority arbitration, wired-AND
// clustering of identical remote frames, per-frame duration pacing,
// TEC/REC confinement — lives broker-side, so the client stays a thin
// controller front-end (the stack.Port contract).
//
// Every message is a fixed-size MsgSize-byte record: a kind byte followed
// by a kind-specific layout, integers big-endian. Fixed framing keeps the
// reader allocation-free and makes stream desynchronization impossible —
// a malformed record fails decoding without poisoning its successors.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"

	"canely/internal/bus"
	"canely/internal/can"
)

// Version is the protocol version carried in Hello/Welcome. A broker
// rejects clients speaking a different version.
//
// Version 2 added the Hello role byte and the Digest record (multi-segment
// federation): a version-1 Hello (role byte absent, i.e. zero) decodes as a
// plain node, but version-1 brokers reject version-2 clients outright, so
// mixed deployments fail fast at the handshake instead of mid-protocol.
const Version = 2

// MsgSize is the fixed on-wire size of every message, in bytes.
const MsgSize = 16

// Kind discriminates broker protocol messages.
type Kind byte

// Message kinds. Hello through Crash travel client → broker; Frame through
// State travel broker → client.
const (
	// KindHello identifies the client: protocol version + node id.
	KindHello Kind = 1 + iota
	// KindWelcome acknowledges Hello: protocol version + signalling rate.
	KindWelcome
	// KindRequest queues a frame for transmission (can-data.req /
	// can-rtr.req forwarded to the broker's controller).
	KindRequest
	// KindAbort cancels a pending transmit request by identifier.
	KindAbort
	// KindCrash fail-silences the node's controller at the broker.
	KindCrash
	// KindFrame is a frame indication; Own flags self-reception of the
	// node's own (possibly clustered) transmission.
	KindFrame
	// KindConfirm is a transmit confirmation.
	KindConfirm
	// KindState reports a fault-confinement transition with the error
	// counters; a transition to bus-off is terminal.
	KindState
	// KindDigest travels client → broker from gateway-role clients: the
	// gateway's current federation site view for the segment this broker
	// emulates. The broker does not interpret it — digests between gateways
	// travel as ordinary TypeFed CAN frames — but logs and retains the last
	// one per gateway, giving live deployments a broker-side observability
	// point for cross-segment agreement.
	KindDigest
)

// Role classifies a Hello: a plain protocol node or a federation gateway.
// The zero value is RoleNode, so version-1 captures replayed against a
// version-2 decoder keep their meaning.
type Role byte

// Hello roles.
const (
	RoleNode Role = iota
	RoleGateway
	// RoleTap is a passive bus observer: it owns no controller and no node
	// identity (the Hello node id is ignored), sends nothing after Hello,
	// and receives every physically delivered frame as a Frame indication.
	// Taps are how load generators and traffic analyzers watch a broker
	// without consuming one of the MaxNodes controller identities — the
	// 1000-connection load test is mostly taps.
	RoleTap
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleNode:
		return "node"
	case RoleGateway:
		return "gateway"
	case RoleTap:
		return "tap"
	default:
		return fmt.Sprintf("role(%d)", byte(r))
	}
}

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindHello:
		return "hello"
	case KindWelcome:
		return "welcome"
	case KindRequest:
		return "request"
	case KindAbort:
		return "abort"
	case KindCrash:
		return "crash"
	case KindFrame:
		return "frame"
	case KindConfirm:
		return "confirm"
	case KindState:
		return "state"
	case KindDigest:
		return "digest"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Msg is one broker protocol message. Only the fields relevant to Kind are
// meaningful; the rest stay zero.
type Msg struct {
	Kind Kind

	// Node is the client identity (Hello) or the reporting gateway
	// (Digest).
	Node can.NodeID
	// Role classifies the client (Hello): plain node or gateway.
	Role Role
	// Seg is the segment this broker emulates, as the gateway knows it
	// (Digest).
	Seg can.NodeID
	// View is the gateway's current site view (Digest).
	View can.NodeSet
	// Rate is the broker's signalling rate (Welcome).
	Rate can.BitRate
	// Frame carries the CAN frame of Request, Frame and Confirm.
	Frame can.Frame
	// Own marks self-reception on a Frame indication.
	Own bool
	// ID is the identifier of the request to cancel (Abort).
	ID uint32
	// State, TEC and REC report fault confinement (State).
	State    bus.ControllerState
	TEC, REC uint16
}

// Frame flag bits at offset 1 of Request/Frame/Confirm records.
const (
	flagRTR = 1 << 0
	flagOwn = 1 << 1
)

// Encode serializes the message into a MsgSize-byte record.
func (m Msg) Encode(b *[MsgSize]byte) {
	*b = [MsgSize]byte{}
	b[0] = byte(m.Kind)
	switch m.Kind {
	case KindHello:
		b[1] = Version
		b[2] = byte(m.Node)
		b[3] = byte(m.Role)
	case KindWelcome:
		b[1] = Version
		binary.BigEndian.PutUint32(b[2:6], uint32(m.Rate))
	case KindRequest, KindFrame, KindConfirm:
		if m.Frame.RTR {
			b[1] |= flagRTR
		}
		if m.Own {
			b[1] |= flagOwn
		}
		binary.BigEndian.PutUint32(b[2:6], m.Frame.ID)
		b[6] = m.Frame.DLC
		copy(b[7:7+can.MaxData], m.Frame.Data[:])
	case KindAbort:
		binary.BigEndian.PutUint32(b[2:6], m.ID)
	case KindCrash:
		// kind byte only
	case KindState:
		b[1] = byte(m.State)
		binary.BigEndian.PutUint16(b[2:4], m.TEC)
		binary.BigEndian.PutUint16(b[4:6], m.REC)
	case KindDigest:
		b[1] = byte(m.Seg)
		b[2] = byte(m.Node)
		copy(b[3:11], m.View.Bytes())
	}
}

// Decode parses a MsgSize-byte record.
func Decode(b [MsgSize]byte) (Msg, error) {
	m := Msg{Kind: Kind(b[0])}
	switch m.Kind {
	case KindHello:
		if b[1] != Version {
			return Msg{}, fmt.Errorf("wire: protocol version %d, want %d", b[1], Version)
		}
		m.Role = Role(b[3])
		if m.Role > RoleTap {
			return Msg{}, fmt.Errorf("wire: invalid hello role %d", b[3])
		}
		m.Node = can.NodeID(b[2])
		// Taps carry no node identity; everyone else must name a valid one.
		if m.Role != RoleTap && !m.Node.Valid() {
			return Msg{}, fmt.Errorf("wire: invalid node id %d", b[2])
		}
	case KindWelcome:
		if b[1] != Version {
			return Msg{}, fmt.Errorf("wire: protocol version %d, want %d", b[1], Version)
		}
		m.Rate = can.BitRate(binary.BigEndian.Uint32(b[2:6]))
		if m.Rate <= 0 {
			return Msg{}, fmt.Errorf("wire: non-positive rate %d", m.Rate)
		}
	case KindRequest, KindFrame, KindConfirm:
		m.Frame.RTR = b[1]&flagRTR != 0
		m.Own = b[1]&flagOwn != 0
		m.Frame.ID = binary.BigEndian.Uint32(b[2:6])
		m.Frame.DLC = b[6]
		copy(m.Frame.Data[:], b[7:7+can.MaxData])
		if err := m.Frame.Validate(); err != nil {
			return Msg{}, fmt.Errorf("wire: %v record: %w", m.Kind, err)
		}
	case KindAbort:
		m.ID = binary.BigEndian.Uint32(b[2:6])
	case KindCrash:
		// kind byte only
	case KindState:
		m.State = bus.ControllerState(b[1])
		if m.State < bus.ErrorActive || m.State > bus.BusOff {
			return Msg{}, fmt.Errorf("wire: invalid controller state %d", b[1])
		}
		m.TEC = binary.BigEndian.Uint16(b[2:4])
		m.REC = binary.BigEndian.Uint16(b[4:6])
	case KindDigest:
		m.Seg = can.NodeID(b[1])
		m.Node = can.NodeID(b[2])
		if !m.Seg.Valid() || !m.Node.Valid() {
			return Msg{}, fmt.Errorf("wire: invalid digest ids seg=%d gw=%d", b[1], b[2])
		}
		view, err := can.SetFromBytes(b[3:11])
		if err != nil {
			return Msg{}, fmt.Errorf("wire: digest view: %w", err)
		}
		m.View = view
	default:
		return Msg{}, fmt.Errorf("wire: unknown message kind %d", b[0])
	}
	return m, nil
}

// Write serializes m to w as one record.
func Write(w io.Writer, m Msg) error {
	var b [MsgSize]byte
	m.Encode(&b)
	_, err := w.Write(b[:])
	return err
}

// Read reads exactly one record from r and decodes it.
func Read(r io.Reader) (Msg, error) {
	var b [MsgSize]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return Msg{}, err
	}
	return Decode(b)
}
