package wire

import (
	"bytes"
	"io"
	"testing"

	"canely/internal/bus"
	"canely/internal/can"
)

// roundTripMsgs enumerates one message per kind with every meaningful field
// populated.
func roundTripMsgs() []Msg {
	var f can.Frame
	f.ID = can.DataSign(3, 7, 42).Encode()
	f.SetPayload([]byte{0xCA, 0xFE, 0x01})
	rtr := can.Frame{ID: can.FDASign(9).Encode(), RTR: true, DLC: 0}
	return []Msg{
		{Kind: KindHello, Node: 63},
		{Kind: KindHello, Node: 9, Role: RoleGateway},
		{Kind: KindDigest, Seg: 1, Node: 9, View: can.MakeSet(0, 1)},
		{Kind: KindWelcome, Rate: can.Rate125Kbps},
		{Kind: KindRequest, Frame: f},
		{Kind: KindRequest, Frame: rtr},
		{Kind: KindAbort, ID: f.ID},
		{Kind: KindCrash},
		{Kind: KindFrame, Frame: f, Own: true},
		{Kind: KindFrame, Frame: rtr},
		{Kind: KindConfirm, Frame: f},
		{Kind: KindState, State: bus.ErrorPassive, TEC: 136, REC: 3},
		{Kind: KindState, State: bus.BusOff, TEC: 256},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, m := range roundTripMsgs() {
		var b [MsgSize]byte
		m.Encode(&b)
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Kind, err)
		}
		if got != m {
			t.Fatalf("%v round trip:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

func TestStreamReadWrite(t *testing.T) {
	msgs := roundTripMsgs()
	var buf bytes.Buffer
	for _, m := range msgs {
		if err := Write(&buf, m); err != nil {
			t.Fatalf("write %v: %v", m.Kind, err)
		}
	}
	if buf.Len() != len(msgs)*MsgSize {
		t.Fatalf("stream length %d, want %d", buf.Len(), len(msgs)*MsgSize)
	}
	for _, want := range msgs {
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("read %v: %v", want.Kind, err)
		}
		if got != want {
			t.Fatalf("stream round trip: got %+v want %+v", got, want)
		}
	}
	if _, err := Read(&buf); err != io.EOF {
		t.Fatalf("read past end: %v, want io.EOF", err)
	}
}

func TestDecodeRejectsMalformedRecords(t *testing.T) {
	cases := map[string][MsgSize]byte{}

	var b [MsgSize]byte
	Msg{Kind: KindHello, Node: 1}.Encode(&b)
	b[1] = Version + 1
	cases["hello version"] = b

	Msg{Kind: KindHello}.Encode(&b)
	b[2] = can.MaxNodes
	cases["hello node id"] = b

	Msg{Kind: KindWelcome, Rate: can.Rate1Mbps}.Encode(&b)
	b[1] = Version + 1
	cases["welcome version"] = b

	cases["zero rate"] = func() [MsgSize]byte {
		var b [MsgSize]byte
		Msg{Kind: KindWelcome}.Encode(&b)
		return b
	}()

	cases["unknown kind"] = [MsgSize]byte{0xEE}

	cases["oversized DLC"] = func() [MsgSize]byte {
		var b [MsgSize]byte
		Msg{Kind: KindRequest, Frame: can.Frame{ID: 1}}.Encode(&b)
		b[6] = can.MaxData + 1
		return b
	}()

	cases["bad state"] = func() [MsgSize]byte {
		var b [MsgSize]byte
		Msg{Kind: KindState}.Encode(&b)
		b[1] = 99
		return b
	}()

	cases["bad hello role"] = func() [MsgSize]byte {
		var b [MsgSize]byte
		Msg{Kind: KindHello, Node: 1}.Encode(&b)
		b[3] = byte(RoleTap) + 1
		return b
	}()

	cases["bad digest segment"] = func() [MsgSize]byte {
		var b [MsgSize]byte
		Msg{Kind: KindDigest, Seg: 1, Node: 9}.Encode(&b)
		b[1] = can.MaxNodes
		return b
	}()

	for name, rec := range cases {
		if _, err := Decode(rec); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
