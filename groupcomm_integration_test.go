package canely

import (
	"fmt"
	"testing"
	"time"
)

func TestGroupsIntegration(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 4)
	for _, nd := range net.Nodes() {
		if err := nd.EnableGroups(); err != nil {
			t.Fatal(err)
		}
	}
	net.BootstrapAll()
	net.Run(10 * time.Millisecond)

	g := GroupID(9)
	if err := net.Node(1).JoinGroup(g); err != nil {
		t.Fatal(err)
	}
	if err := net.Node(2).JoinGroup(g); err != nil {
		t.Fatal(err)
	}
	net.Run(20 * time.Millisecond)
	want := MakeSet(1, 2)
	for _, nd := range net.Nodes() {
		if nd.GroupView(g) != want {
			t.Fatalf("node %v group view = %v, want %v", nd.ID(), nd.GroupView(g), want)
		}
	}

	// Crash one member site: group views shrink consistently.
	net.Node(2).Crash()
	net.Run(cfg.DetectionLatencyBound() + cfg.Tm)
	for _, nd := range net.Nodes() {
		if !nd.Alive() {
			continue
		}
		if nd.GroupView(g) != MakeSet(1) {
			t.Fatalf("node %v group view = %v after crash", nd.ID(), nd.GroupView(g))
		}
	}
}

func TestGroupsRequireEnable(t *testing.T) {
	net := NewNetwork(DefaultConfig(), 2)
	net.BootstrapAll()
	if err := net.Node(0).JoinGroup(1); err == nil {
		t.Fatal("JoinGroup without EnableGroups accepted")
	}
	if !net.Node(0).GroupView(1).Empty() {
		t.Fatal("GroupView without enable should be empty")
	}
	if err := net.Node(0).EnableGroups(); err != nil {
		t.Fatal(err)
	}
	if err := net.Node(0).EnableGroups(); err == nil {
		t.Fatal("double EnableGroups accepted")
	}
}

func TestOrderedBroadcastIntegration(t *testing.T) {
	cfg := DefaultConfig()
	net := NewNetwork(cfg, 3)
	logs := make([][]string, 3)
	for i, nd := range net.Nodes() {
		if err := nd.EnableOrderedBroadcast(5 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		i := i
		nd.OnOrderedDeliver(func(from NodeID, data []byte) {
			logs[i] = append(logs[i], fmt.Sprintf("%v:%s", from, data))
		})
	}
	net.BootstrapAll()
	net.Run(5 * time.Millisecond)
	net.Node(0).OrderedBroadcast([]byte("a"))
	net.Node(1).OrderedBroadcast([]byte("b"))
	net.Run(20 * time.Millisecond)
	if len(logs[0]) != 2 {
		t.Fatalf("deliveries = %v", logs[0])
	}
	for i := 1; i < 3; i++ {
		for k := range logs[0] {
			if logs[i][k] != logs[0][k] {
				t.Fatalf("order differs: %v vs %v", logs[i], logs[0])
			}
		}
	}
}

func TestOrderedBroadcastRequireEnable(t *testing.T) {
	net := NewNetwork(DefaultConfig(), 2)
	net.BootstrapAll()
	if err := net.Node(0).OrderedBroadcast([]byte{1}); err == nil {
		t.Fatal("OrderedBroadcast without enable accepted")
	}
	if err := net.Node(0).EnableOrderedBroadcast(time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := net.Node(0).EnableOrderedBroadcast(time.Millisecond); err == nil {
		t.Fatal("double enable accepted")
	}
}
